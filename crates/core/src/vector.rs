//! CBWS vectors and CBWS differentials (paper §IV-B, Eq. 1 and Eq. 2).

use cbws_trace::LineAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A code block working set: the time-ordered set of *unique* cache-line
/// addresses accessed by one dynamic instance of an annotated code block
/// (Eq. 1 of the paper).
///
/// Hardware bounds the vector at a configurable capacity (16 in the paper;
/// §IV-A reports that 16 lines map the complete working set of over 98% of
/// dynamic blocks). Accesses beyond the capacity are dropped from tracing,
/// which is exactly what makes the paper's `bzip2` result degrade.
///
/// ```
/// use cbws_core::CbwsVec;
/// use cbws_trace::LineAddr;
///
/// let mut ws = CbwsVec::new(16);
/// assert!(ws.observe(LineAddr(0x120)));
/// assert!(!ws.observe(LineAddr(0x120))); // duplicate: not re-added
/// assert!(ws.observe(LineAddr(0x3F9)));
/// assert_eq!(ws.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CbwsVec {
    lines: Vec<LineAddr>,
    capacity: usize,
    /// Accesses observed after the vector filled (tracing overflow).
    overflowed: u64,
}

impl CbwsVec {
    /// Creates an empty working set bounded at `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a CBWS must hold at least one line");
        CbwsVec {
            lines: Vec::with_capacity(capacity),
            capacity,
            overflowed: 0,
        }
    }

    /// Observes an access to `line`. Returns `true` if the line was newly
    /// appended (first access within the block, with room left).
    pub fn observe(&mut self, line: LineAddr) -> bool {
        if self.lines.contains(&line) {
            return false;
        }
        if self.lines.len() >= self.capacity {
            self.overflowed += 1;
            return false;
        }
        self.lines.push(line);
        true
    }

    /// Number of distinct lines captured.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no lines have been captured.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct-line observations dropped due to capacity.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// The `idx`-th line in access order.
    pub fn get(&self, idx: usize) -> Option<LineAddr> {
        self.lines.get(idx).copied()
    }

    /// Lines in access order.
    pub fn lines(&self) -> &[LineAddr] {
        &self.lines
    }

    /// Iterates over the lines in access order.
    pub fn iter(&self) -> std::slice::Iter<'_, LineAddr> {
        self.lines.iter()
    }

    /// Clears the vector for a new block instance (`BLOCK_BEGIN`).
    pub fn clear(&mut self) {
        self.lines.clear();
        self.overflowed = 0;
    }

    /// Computes the CBWS differential `Δ = self − prev` (Eq. 2): the
    /// element-wise line-address subtraction, aligned to the shorter vector
    /// (branch divergence may change working-set size across iterations,
    /// §IV-B).
    pub fn differential(&self, prev: &CbwsVec) -> Differential {
        let n = self.lines.len().min(prev.lines.len());
        Differential::from_strides((0..n).map(|i| self.lines[i].delta(prev.lines[i])))
    }
}

impl fmt::Display for CbwsVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lines.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:#x}", l.0)?;
        }
        write!(f, ")")
    }
}

/// A CBWS differential: the stride vector between two CBWS instances of the
/// same static block (Eq. 2).
///
/// Hardware stores each element in 16 bits ("address strides are typically
/// small", §V-A); larger strides truncate, exactly as 16-bit hardware
/// registers would, making such patterns unpredictable rather than erroring.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Differential {
    strides: Vec<i16>,
    /// Set when any source stride did not fit in 16 bits.
    truncated: bool,
}

impl Differential {
    /// Builds a differential from full-width strides, truncating each to
    /// 16 bits as the hardware registers do.
    pub fn from_strides<I: IntoIterator<Item = i64>>(strides: I) -> Self {
        let mut truncated = false;
        let strides = strides
            .into_iter()
            .map(|s| {
                let t = s as i16;
                if i64::from(t) != s {
                    truncated = true;
                }
                t
            })
            .collect();
        Differential { strides, truncated }
    }

    /// Number of stride elements.
    pub fn len(&self) -> usize {
        self.strides.len()
    }

    /// Whether the differential has no elements.
    pub fn is_empty(&self) -> bool {
        self.strides.is_empty()
    }

    /// The stride elements.
    pub fn strides(&self) -> &[i16] {
        &self.strides
    }

    /// Whether any stride was truncated to fit 16 bits.
    pub fn was_truncated(&self) -> bool {
        self.truncated
    }

    /// The 12-bit bit-select hash stored in the history shift registers
    /// (§V-A: "differentials are represented using 12 bits extracted from
    /// the original differential").
    pub fn hash12(&self) -> u16 {
        let mut h: u32 = 0x9E5;
        for (i, &s) in self.strides.iter().enumerate() {
            let v = s as u16 as u32;
            h ^= v.rotate_left((i as u32 * 5) % 16);
            h = h.wrapping_mul(0x85);
        }
        (h ^ (h >> 12)) as u16 & 0xFFF
    }

    /// Predicts a future working set by element-wise vector addition onto
    /// `base` (Fig. 11 step 4). The result is aligned to the shorter of the
    /// two vectors.
    pub fn apply(&self, base: &CbwsVec) -> Vec<LineAddr> {
        self.strides
            .iter()
            .zip(base.iter())
            .map(|(&s, &b)| b.offset(i64::from(s)))
            .collect()
    }

    /// Whether all strides are zero (the next iteration reuses the same
    /// working set — nothing new to prefetch).
    pub fn is_zero(&self) -> bool {
        self.strides.iter().all(|&s| s == 0)
    }
}

impl fmt::Display for Differential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.strides.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(lines: &[u64]) -> CbwsVec {
        let mut v = CbwsVec::new(16);
        for &l in lines {
            v.observe(LineAddr(l));
        }
        v
    }

    #[test]
    fn uniqueness_invariant() {
        let mut v = CbwsVec::new(16);
        assert!(v.observe(LineAddr(1)));
        assert!(!v.observe(LineAddr(1)));
        assert!(v.observe(LineAddr(2)));
        assert_eq!(v.lines(), &[LineAddr(1), LineAddr(2)]);
    }

    #[test]
    fn capacity_enforced_with_overflow_count() {
        let mut v = CbwsVec::new(2);
        v.observe(LineAddr(1));
        v.observe(LineAddr(2));
        assert!(!v.observe(LineAddr(3)));
        assert_eq!(v.len(), 2);
        assert_eq!(v.overflowed(), 1);
    }

    #[test]
    fn stencil_differential_is_constant_1024() {
        // Fig. 3 / Fig. 4 of the paper: consecutive Stencil iterations.
        let c0 = ws(&[0x80, 0x81, 6515, 4467, 5499, 5483, 5491]);
        let c1 = ws(&[0x80, 0x81, 7539, 5491, 6523, 6507, 6515]);
        let d = c1.differential(&c0);
        assert_eq!(d.strides(), &[0, 0, 1024, 1024, 1024, 1024, 1024]);
        assert!(!d.was_truncated());
    }

    #[test]
    fn differential_aligns_to_shorter() {
        let a = ws(&[10, 20, 30]);
        let b = ws(&[11, 22]);
        let d = b.differential(&a);
        assert_eq!(d.strides(), &[1, 2]);
    }

    #[test]
    fn differential_antisymmetry() {
        let a = ws(&[100, 200, 300]);
        let b = ws(&[104, 196, 300]);
        let dab = b.differential(&a);
        let dba = a.differential(&b);
        let neg: Vec<i16> = dba.strides().iter().map(|s| -s).collect();
        assert_eq!(dab.strides(), &neg[..]);
    }

    #[test]
    fn apply_recovers_next_ws() {
        let c0 = ws(&[0x80, 0x81, 6515, 4467, 5499, 5483, 5491]);
        let c1 = ws(&[0x80, 0x81, 7539, 5491, 6523, 6507, 6515]);
        let d = c1.differential(&c0);
        let predicted = d.apply(&c1);
        // CBWS2 from Fig. 3.
        let expect: Vec<LineAddr> = [0x80u64, 0x81, 8563, 6515, 7547, 7531, 7539]
            .map(LineAddr)
            .to_vec();
        assert_eq!(predicted, expect);
    }

    #[test]
    fn truncation_flagged_and_wraps() {
        let a = ws(&[0]);
        let b = ws(&[1 << 20]);
        let d = b.differential(&a);
        assert!(d.was_truncated());
        assert_eq!(d.strides().len(), 1);
        // The wrapped 16-bit value, as hardware would store.
        assert_eq!(d.strides()[0], (1i64 << 20) as i16);
    }

    #[test]
    fn hash12_in_range_and_discriminates() {
        let d1 = Differential::from_strides([0, 0, 1024, 1024]);
        let d2 = Differential::from_strides([0, 0, 1024, 1025]);
        assert!(d1.hash12() <= 0xFFF);
        assert_ne!(d1.hash12(), d2.hash12(), "nearby vectors should hash apart");
        assert_eq!(d1.hash12(), d1.clone().hash12(), "hash is deterministic");
    }

    #[test]
    fn zero_differential_detected() {
        let a = ws(&[1, 2, 3]);
        let d = a.differential(&a);
        assert!(d.is_zero());
        assert!(!Differential::from_strides([0, 1].into_iter()).is_zero());
    }

    #[test]
    fn clear_resets() {
        let mut v = ws(&[1, 2, 3]);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.overflowed(), 0);
        assert!(v.observe(LineAddr(1)));
    }

    #[test]
    fn display_formats() {
        let v = ws(&[0x80, 0x81]);
        assert_eq!(v.to_string(), "(0x80, 0x81)");
        let d = Differential::from_strides([0, -4]);
        assert_eq!(d.to_string(), "(0, -4)");
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_rejected() {
        CbwsVec::new(0);
    }

    #[test]
    fn empty_differential_from_empty_vectors() {
        let a = CbwsVec::new(4);
        let b = CbwsVec::new(4);
        assert!(b.differential(&a).is_empty());
    }
}
