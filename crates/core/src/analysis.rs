//! Offline CBWS analysis over traces: reconstructs per-iteration CBWS
//! vectors and differentials from an annotated trace.
//!
//! This backs three of the paper's artifacts that are about the *concept*
//! rather than the hardware:
//!
//! * Fig. 3 — the CBWS access matrix of a loop (rows = iterations),
//! * Fig. 4 — the differential vectors between consecutive iterations,
//! * Fig. 5 — the skewed distribution of distinct differential vectors
//!   versus the fraction of iterations they cover.

use crate::vector::{CbwsVec, Differential};
use cbws_trace::{BlockId, EventSource, TraceEvent};
use std::collections::BTreeMap;

/// All CBWS instances of one static block, in execution order.
#[derive(Debug, Clone, Default)]
pub struct BlockHistory {
    /// CBWS vectors, one per dynamic instance.
    pub instances: Vec<CbwsVec>,
}

impl BlockHistory {
    /// Differentials between consecutive instances (Fig. 4): entry `i` is
    /// `instances[i+1] - instances[i]`.
    pub fn consecutive_differentials(&self) -> Vec<Differential> {
        self.instances
            .windows(2)
            .map(|w| w[1].differential(&w[0]))
            .collect()
    }
}

/// Reconstructs CBWS vectors per static block from an annotated trace.
///
/// `capacity` bounds each vector like the hardware does (pass a large value
/// to observe unbounded working sets, e.g. for the 16-line sufficiency
/// statistic of §IV-A).
pub fn collect_block_histories<S: EventSource + ?Sized>(
    trace: &S,
    capacity: usize,
) -> BTreeMap<BlockId, BlockHistory> {
    let mut histories: BTreeMap<BlockId, BlockHistory> = BTreeMap::new();
    let mut open: Option<(BlockId, CbwsVec)> = None;
    for e in trace.cursor() {
        match e {
            TraceEvent::BlockBegin { id } => {
                open = Some((id, CbwsVec::new(capacity)));
            }
            TraceEvent::BlockEnd { id } => {
                if let Some((open_id, ws)) = open.take() {
                    if open_id == id {
                        histories.entry(id).or_default().instances.push(ws);
                    }
                }
            }
            TraceEvent::Mem(m) => {
                if let Some((_, ws)) = &mut open {
                    ws.observe(m.addr.line());
                }
            }
            _ => {}
        }
    }
    histories
}

/// One point of the Fig. 5 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewPoint {
    /// Fraction of distinct differential vectors considered, in 0..=1
    /// (horizontal axis).
    pub vector_fraction: f64,
    /// Fraction of iterations those vectors cover, in 0..=1 (vertical axis).
    pub iteration_fraction: f64,
}

/// The Fig. 5 statistic: how few distinct differential vectors cover how
/// many loop iterations.
#[derive(Debug, Clone, Default)]
pub struct DifferentialSkew {
    /// Distinct differential vectors with their occurrence counts, most
    /// frequent first.
    pub counts: Vec<(Differential, u64)>,
    /// Total differentials observed (≈ iterations).
    pub total: u64,
}

impl DifferentialSkew {
    /// Computes the skew over every block in `histories`.
    pub fn from_histories<'a, I>(histories: I) -> Self
    where
        I: IntoIterator<Item = &'a BlockHistory>,
    {
        let mut map: BTreeMap<Vec<i16>, u64> = BTreeMap::new();
        let mut total = 0u64;
        for h in histories {
            for d in h.consecutive_differentials() {
                if d.is_empty() {
                    continue;
                }
                *map.entry(d.strides().to_vec()).or_default() += 1;
                total += 1;
            }
        }
        let mut counts: Vec<(Differential, u64)> = map
            .into_iter()
            .map(|(s, c)| (Differential::from_strides(s.into_iter().map(i64::from)), c))
            .collect();
        counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        DifferentialSkew { counts, total }
    }

    /// Number of distinct differential vectors.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The cumulative-coverage curve of Fig. 5: point `k` gives the fraction
    /// of iterations covered by the `k+1` most frequent vectors.
    pub fn cdf(&self) -> Vec<SkewPoint> {
        if self.total == 0 || self.counts.is_empty() {
            return Vec::new();
        }
        let n = self.counts.len() as f64;
        let mut acc = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(k, (_, c))| {
                acc += c;
                SkewPoint {
                    vector_fraction: (k + 1) as f64 / n,
                    iteration_fraction: acc as f64 / self.total as f64,
                }
            })
            .collect()
    }

    /// Fraction of iterations covered by the most frequent `fraction` of
    /// distinct vectors (e.g. the paper's "90% of iterations from 5% of the
    /// vectors" soplex observation reads `coverage_at(0.05)`).
    pub fn coverage_at(&self, fraction: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.counts.len() as f64 * fraction).ceil() as usize).clamp(1, self.counts.len());
        let covered: u64 = self.counts.iter().take(k).map(|(_, c)| c).sum();
        covered as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::{Addr, Pc, Trace, TraceBuilder};

    fn strided_trace(iters: u64, stride: u64) -> Trace {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(0), iters, |b, i| {
            b.load(Pc(0x10), Addr((100 + i * stride) * 64));
            b.load(Pc(0x14), Addr((500 + i * stride) * 64));
        });
        b.finish()
    }

    #[test]
    fn histories_capture_each_iteration() {
        let h = collect_block_histories(&strided_trace(5, 8), 16);
        let bh = &h[&BlockId(0)];
        assert_eq!(bh.instances.len(), 5);
        assert_eq!(
            bh.instances[0].lines(),
            &[Addr(100 * 64).line(), Addr(500 * 64).line()]
        );
    }

    #[test]
    fn constant_stride_yields_single_differential() {
        let h = collect_block_histories(&strided_trace(10, 8), 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert_eq!(skew.distinct(), 1);
        assert_eq!(skew.total, 9);
        assert_eq!(skew.counts[0].0.strides(), &[8, 8]);
        assert_eq!(skew.coverage_at(0.05), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        // Mix two stride phases for two distinct differentials.
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(0), 6, |b, i| {
            b.load(Pc(0), Addr(i * 64 * 4));
        });
        b.annotated_loop(BlockId(1), 6, |b, i| {
            b.load(Pc(0), Addr((1 << 20) + i * 64 * 9));
        });
        let h = collect_block_histories(&b.finish(), 16);
        let skew = DifferentialSkew::from_histories(h.values());
        let cdf = skew.cdf();
        assert_eq!(cdf.last().unwrap().iteration_fraction, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].iteration_fraction >= w[0].iteration_fraction);
            assert!(w[1].vector_fraction > w[0].vector_fraction);
        }
    }

    #[test]
    fn skewed_distribution_detected() {
        // 90 iterations of one differential + 10 one-off differentials.
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(0), 91, |b, i| {
            b.load(Pc(0), Addr(i * 64 * 2));
        });
        for k in 0..10u64 {
            b.annotated_loop(BlockId(1 + k as u32), 2, |b, i| {
                b.load(
                    Pc(0),
                    Addr((1 << 25) + k * (1 << 15) + i * 64 * (50 + 13 * k)),
                );
            });
        }
        let h = collect_block_histories(&b.finish(), 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert!(skew.distinct() >= 10);
        // The single most frequent vector covers most iterations.
        assert!(skew.coverage_at(0.1) > 0.85);
    }

    #[test]
    fn empty_trace_yields_empty_skew() {
        let h = collect_block_histories(&Trace::default(), 16);
        let skew = DifferentialSkew::from_histories(h.values());
        assert_eq!(skew.distinct(), 0);
        assert!(skew.cdf().is_empty());
        assert_eq!(skew.coverage_at(0.5), 0.0);
    }

    #[test]
    fn capacity_bounds_reconstruction() {
        let mut b = TraceBuilder::new();
        b.annotated_loop(BlockId(0), 2, |b, i| {
            for j in 0..30u64 {
                b.load(Pc(0), Addr((i * 1000 + j) * 64));
            }
        });
        let h = collect_block_histories(&b.finish(), 16);
        assert_eq!(h[&BlockId(0)].instances[0].len(), 16);
        let unbounded = collect_block_histories(&strided_trace(2, 1), 1000);
        assert_eq!(unbounded[&BlockId(0)].instances[0].len(), 2);
    }
}
