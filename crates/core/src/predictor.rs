//! The CBWS prediction hardware (paper §IV-C, §V, Algorithm 1, Fig. 8-11).

use crate::vector::{CbwsVec, Differential};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, MetricSpec, ParamSpec};
use cbws_prefetchers::{PrefetchContext, Prefetcher};
use cbws_telemetry::{SimEvent, Telemetry};
use cbws_trace::{BlockId, LineAddr};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the CBWS predictor (defaults per Fig. 8 / Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CbwsConfig {
    /// Maximum distinct lines traced per block ("Max. Vector Members 16").
    pub max_vector: usize,
    /// Predecessor CBWSs stored ("# Last CBWS Stored 4"), which is also the
    /// number of multi-step differentials maintained.
    pub max_step: usize,
    /// How many future iterations to prefetch at each `BLOCK_END` (Fig. 7
    /// illustrates 1-step and 2-step prediction; Algorithm 1 predicts up to
    /// `max_step - 1` steps). Must be ≤ `max_step`.
    pub prediction_depth: usize,
    /// Depth of each history shift register (§V-A: 3-deep).
    pub history_depth: usize,
    /// Differential history table entries (16, fully associative, random
    /// replacement).
    pub table_entries: usize,
    /// Observe L1 hits as well as misses when tracing working sets. The
    /// paper's central claim is that compiler hints make this aggressive
    /// setting safe inside tight loops; `false` is the ablation.
    pub observe_l1_hits: bool,
}

impl Default for CbwsConfig {
    fn default() -> Self {
        CbwsConfig {
            max_vector: 16,
            max_step: 4,
            prediction_depth: 3,
            history_depth: 3,
            table_entries: 16,
            observe_l1_hits: true,
        }
    }
}

impl CbwsConfig {
    /// Storage budget in bits, itemized as in Fig. 8.
    pub fn storage_bits(&self) -> u64 {
        let v = self.max_vector as u64;
        let s = self.max_step as u64;
        let current_cbws = v * 32;
        let last_cbws = s * v * 32;
        let current_diffs = s * v * 16;
        let history_regs = s * self.history_depth as u64 * 12;
        let table = self.table_entries as u64 * (16 + v * 16);
        current_cbws + last_cbws + current_diffs + history_regs + table
    }
}

/// The CBWS parameter list, shared by the standalone, hybrid, and
/// multi-context descriptions (all embed the same Fig. 8 hardware).
pub(crate) fn cbws_params(c: &CbwsConfig) -> Vec<ParamSpec> {
    vec![
        ParamSpec::new(
            "max_vector",
            "maximum distinct lines traced per block (Fig. 8: \"Max. Vector Members 16\")",
            c.max_vector.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "max_step",
            "predecessor CBWSs stored, which is also the number of \
             multi-step differentials maintained (Fig. 8: 4)",
            c.max_step.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "prediction_depth",
            "future iterations prefetched at each BLOCK_END (Algorithm 1 \
             predicts up to max_step - 1 steps)",
            c.prediction_depth.to_string(),
            "1 ≤ depth ≤ max_step",
        ),
        ParamSpec::new(
            "history_depth",
            "depth of each history shift register (§V-A: 3)",
            c.history_depth.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "table_entries",
            "differential history table entries, fully associative with \
             random replacement (§V-A: 16)",
            c.table_entries.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "observe_l1_hits",
            "observe L1 hits as well as misses when tracing working sets — \
             the aggressive setting the paper argues compiler hints make safe",
            c.observe_l1_hits.to_string(),
            "bool",
        ),
    ]
}

/// The metrics the CBWS prediction engine emits, shared by every scheme
/// embedding a [`CbwsPredictor`].
pub(crate) fn cbws_metrics() -> Vec<MetricSpec> {
    vec![
        MetricSpec::counter(
            "cbws.table.hit",
            "differential-history-table lookups that hit",
        ),
        MetricSpec::counter(
            "cbws.table.miss",
            "differential-history-table lookups that missed",
        ),
        MetricSpec::counter(
            "cbws.prediction.hit",
            "BLOCK_END predictions issued (history table confident)",
        ),
        MetricSpec::counter(
            "cbws.prediction.miss",
            "BLOCK_END events with no confident prediction",
        ),
        MetricSpec::histogram(
            "cbws.vector_len",
            "distinct lines per completed CBWS vector",
        ),
    ]
}

/// One history shift register: a BHR-like FIFO of 12-bit differential
/// hashes (§V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
struct HistoryShiftRegister {
    entries: VecDeque<u16>,
    depth: usize,
}

impl HistoryShiftRegister {
    fn new(depth: usize) -> Self {
        HistoryShiftRegister {
            entries: VecDeque::with_capacity(depth),
            depth,
        }
    }

    fn shift(&mut self, hash12: u16) {
        if self.entries.len() == self.depth {
            self.entries.pop_front();
        }
        self.entries.push_back(hash12 & 0xFFF);
    }

    /// Whether the register holds a full history (predictions before that
    /// would index the table with mostly-empty state).
    fn is_warm(&self) -> bool {
        self.entries.len() == self.depth
    }

    /// Folds the register contents into a 16-bit tag, salted by the step
    /// index so different step distances do not alias in the shared table.
    fn tag(&self, step: usize) -> u16 {
        let mut t: u16 = (step as u16).wrapping_mul(0x9E37);
        for (i, &e) in self.entries.iter().enumerate() {
            t ^= e.rotate_left((i as u32 * 5) % 16);
        }
        t
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The 16-entry, fully-associative differential history table with random
/// replacement (§V-A). Randomness comes from a deterministic xorshift so
/// simulations are reproducible.
#[derive(Debug, Clone)]
struct DiffHistoryTable {
    entries: Vec<Option<(u16, Differential)>>,
    rng: u32,
}

impl DiffHistoryTable {
    fn new(entries: usize) -> Self {
        DiffHistoryTable {
            entries: vec![None; entries],
            rng: 0x2545_F491,
        }
    }

    fn next_random(&mut self) -> u32 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.rng = x;
        x
    }

    fn lookup(&self, tag: u16) -> Option<&Differential> {
        self.entries
            .iter()
            .flatten()
            .find(|(t, _)| *t == tag)
            .map(|(_, d)| d)
    }

    fn insert(&mut self, tag: u16, diff: Differential) {
        if let Some(slot) = self.entries.iter_mut().flatten().find(|(t, _)| *t == tag) {
            slot.1 = diff;
            return;
        }
        if let Some(free) = self.entries.iter_mut().find(|e| e.is_none()) {
            *free = Some((tag, diff));
            return;
        }
        let victim = self.next_random() as usize % self.entries.len();
        self.entries[victim] = Some((tag, diff));
    }

    fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Counters exposed by the CBWS predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CbwsStats {
    /// Dynamic block instances completed.
    pub blocks: u64,
    /// `BLOCK_END` events where at least one table lookup hit.
    pub prediction_hits: u64,
    /// `BLOCK_END` events where every lookup missed (standalone CBWS stays
    /// silent; the hybrid falls back to SMS).
    pub prediction_misses: u64,
    /// Lines whose tracing was dropped because the vector was full.
    pub vector_overflows: u64,
    /// Context switches between different static blocks.
    pub block_switches: u64,
}

/// The CBWS prediction engine: tracks the current block's working set,
/// maintains multi-step differentials against the last `max_step` CBWSs,
/// and predicts future working sets at each `BLOCK_END` (Algorithm 1).
///
/// This struct is the raw hardware model; [`CbwsPrefetcher`] wraps it in the
/// [`Prefetcher`] trait for the simulation harness.
#[derive(Debug, Clone)]
pub struct CbwsPredictor {
    cfg: CbwsConfig,
    current_block: Option<BlockId>,
    curr: CbwsVec,
    /// Incrementally-built strides against each predecessor CBWS
    /// (`curr_diff[i]` in Algorithm 1; index 0 = 1-step).
    curr_diffs: Vec<Vec<i64>>,
    /// Predecessor CBWSs, most recent first (`last_cbws`).
    last: VecDeque<CbwsVec>,
    /// One history shift register per step distance.
    histories: Vec<HistoryShiftRegister>,
    table: DiffHistoryTable,
    confident: bool,
    last_block_overflowed: bool,
    last_prediction_span: u64,
    stats: CbwsStats,
    telemetry: Telemetry,
}

impl CbwsPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`prediction_depth`
    /// exceeding `max_step`, or any zero-sized structure).
    pub fn new(cfg: CbwsConfig) -> Self {
        assert!(cfg.max_vector > 0, "max_vector must be non-zero");
        assert!(cfg.max_step > 0, "max_step must be non-zero");
        assert!(cfg.history_depth > 0, "history_depth must be non-zero");
        assert!(cfg.table_entries > 0, "table_entries must be non-zero");
        assert!(
            cfg.prediction_depth >= 1 && cfg.prediction_depth <= cfg.max_step,
            "prediction_depth must be in 1..=max_step"
        );
        CbwsPredictor {
            curr: CbwsVec::new(cfg.max_vector),
            curr_diffs: vec![Vec::new(); cfg.max_step],
            last: VecDeque::with_capacity(cfg.max_step),
            histories: (0..cfg.max_step)
                .map(|_| HistoryShiftRegister::new(cfg.history_depth))
                .collect(),
            table: DiffHistoryTable::new(cfg.table_entries),
            cfg,
            current_block: None,
            confident: false,
            last_block_overflowed: false,
            last_prediction_span: 0,
            stats: CbwsStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink: table lookups become `TableLookup` events
    /// and `cbws.*` metrics. The default is a disabled sink.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration in use.
    pub fn config(&self) -> &CbwsConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CbwsStats {
        &self.stats
    }

    /// Whether the most recent `BLOCK_END` produced a table hit. The hybrid
    /// policy uses this as the CBWS-confidence signal.
    pub fn is_confident(&self) -> bool {
        self.confident
    }

    /// Whether the most recently completed block's working set overflowed
    /// the CBWS capacity (the `bzip2` case, §VII-C): even a confident
    /// prediction then covers only a prefix of the block's footprint, so
    /// the hybrid must not silence its fallback prefetcher.
    pub fn last_block_overflowed(&self) -> bool {
        self.last_block_overflowed
    }

    /// Largest absolute stride (in lines) among the differentials of the
    /// most recent prediction; 0 when the last lookup missed or predicted a
    /// stationary working set. The hybrid compares this against the SMS
    /// region size: working sets that leap across regions are exactly the
    /// patterns SMS cannot follow (§II).
    pub fn last_prediction_span(&self) -> u64 {
        self.last_prediction_span
    }

    /// Current differential-table occupancy (diagnostics).
    pub fn table_occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// `BLOCK_BEGIN(id)`: clears the current-CBWS tracing (Fig. 9). A
    /// different static block id flushes all cross-iteration state, since
    /// the single hardware context tracks one loop at a time.
    pub fn block_begin(&mut self, id: BlockId) {
        if self.current_block != Some(id) {
            if self.current_block.is_some() {
                self.stats.block_switches += 1;
            }
            self.current_block = Some(id);
            self.last.clear();
            for h in &mut self.histories {
                h.clear();
            }
            self.confident = false;
        }
        self.curr.clear();
        for d in &mut self.curr_diffs {
            d.clear();
        }
    }

    /// A committed memory access to `line` inside the current block
    /// (Fig. 10): appends to the current CBWS and extends the multi-step
    /// differentials with one adder per step.
    pub fn observe(&mut self, line: LineAddr) {
        if self.current_block.is_none() {
            return;
        }
        let before = self.curr.overflowed();
        if !self.curr.observe(line) {
            self.stats.vector_overflows += self.curr.overflowed() - before;
            return;
        }
        let idx = self.curr.len() - 1;
        for (step_idx, diffs) in self.curr_diffs.iter_mut().enumerate() {
            if let Some(prev) = self.last.get(step_idx) {
                if let Some(prev_line) = prev.get(idx) {
                    // Differentials align to the shorter vector, so only
                    // extend while still contiguous with the predecessor.
                    if diffs.len() == idx {
                        diffs.push(line.delta(prev_line));
                    }
                }
            }
        }
    }

    /// `BLOCK_END(id)` (Fig. 11): trains the differential history table,
    /// rotates the predecessor buffers, and returns the predicted working
    /// sets of pending iterations.
    pub fn block_end(&mut self, id: BlockId) -> Vec<LineAddr> {
        if self.current_block != Some(id) {
            return Vec::new();
        }
        self.stats.blocks += 1;
        self.last_block_overflowed = self.curr.overflowed() > 0;
        self.telemetry
            .observe("cbws.vector_len", self.curr.len() as u64);

        // 1-2: store each step's new differential under the *previous*
        // history tag, then shift the history register.
        for step in 0..self.cfg.max_step {
            let diff = Differential::from_strides(self.curr_diffs[step].iter().copied());
            if diff.is_empty() {
                continue;
            }
            if self.histories[step].is_warm() {
                let tag = self.histories[step].tag(step);
                self.table.insert(tag, diff.clone());
            }
            self.histories[step].shift(diff.hash12());
        }

        // Rotate the last-CBWSs buffer: the completed CBWS becomes the most
        // recent predecessor.
        if self.last.len() == self.cfg.max_step {
            self.last.pop_back();
        }
        self.last.push_front(self.curr.clone());

        // 3-4: look up the updated histories and predict future CBWSs.
        let mut out = Vec::new();
        let mut hit = false;
        let mut span: u64 = 0;
        let base = self.last.front().expect("just pushed");
        for step in 0..self.cfg.prediction_depth {
            if !self.histories[step].is_warm() {
                continue;
            }
            let tag = self.histories[step].tag(step);
            let lookup = self.table.lookup(tag);
            let step_hit = lookup.is_some();
            self.telemetry.record(|now| SimEvent::TableLookup {
                cycle: now,
                block: id.0,
                hit: step_hit,
            });
            self.telemetry.count(
                if step_hit {
                    "cbws.table.hit"
                } else {
                    "cbws.table.miss"
                },
                1,
            );
            if let Some(pred) = lookup {
                hit = true;
                span = span.max(
                    pred.strides()
                        .iter()
                        .map(|s| s.unsigned_abs() as u64)
                        .max()
                        .unwrap_or(0),
                );
                if !pred.is_zero() {
                    out.extend(pred.apply(base));
                }
            }
        }
        self.confident = hit;
        self.last_prediction_span = span;
        if hit {
            self.stats.prediction_hits += 1;
            self.telemetry.count("cbws.prediction.hit", 1);
        } else {
            self.stats.prediction_misses += 1;
            self.telemetry.count("cbws.prediction.miss", 1);
        }

        self.curr.clear();
        for d in &mut self.curr_diffs {
            d.clear();
        }
        out
    }
}

/// The standalone CBWS prefetcher (§VII evaluation mode "CBWS"): issues
/// prefetches only on a differential-history-table hit; on a miss it stays
/// silent.
#[derive(Debug, Clone)]
pub struct CbwsPrefetcher {
    predictor: CbwsPredictor,
    in_block: bool,
}

impl CbwsPrefetcher {
    /// Creates a standalone CBWS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (see [`CbwsPredictor::new`]).
    pub fn new(cfg: CbwsConfig) -> Self {
        CbwsPrefetcher {
            predictor: CbwsPredictor::new(cfg),
            in_block: false,
        }
    }

    /// The underlying prediction engine.
    pub fn predictor(&self) -> &CbwsPredictor {
        &self.predictor
    }
}

impl Default for CbwsPrefetcher {
    fn default() -> Self {
        CbwsPrefetcher::new(CbwsConfig::default())
    }
}

impl Describe for CbwsPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let mut d = ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "The paper's contribution, standalone: traces each annotated \
             block's working-set vector, learns the differentials between \
             consecutive iterations in a 16-entry history table, and at every \
             BLOCK_END prefetches the complete working sets of the next \
             `prediction_depth` iterations — but only on a history-table hit.",
        )
        .paper_section("§IV-V, Fig. 8, Algorithm 1")
        .storage_bits(self.storage_bits())
        .metrics(cbws_metrics())
        .metrics(cbws_describe::instrumented_prefetcher_metrics());
        for p in cbws_params(&self.predictor.cfg) {
            d = d.param(p);
        }
        d
    }
}

impl Prefetcher for CbwsPrefetcher {
    fn name(&self) -> &'static str {
        "CBWS"
    }

    fn storage_bits(&self) -> u64 {
        self.predictor.cfg.storage_bits()
    }

    fn on_access(&mut self, ctx: &PrefetchContext, _out: &mut Vec<LineAddr>) {
        if !self.in_block {
            return;
        }
        if self.predictor.cfg.observe_l1_hits || ctx.reached_l2() {
            self.predictor.observe(ctx.addr.line());
        }
    }

    fn on_block_begin(&mut self, id: BlockId) {
        self.in_block = true;
        self.predictor.block_begin(id);
    }

    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        self.in_block = false;
        out.extend(self.predictor.block_end(id));
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.predictor.set_telemetry(telemetry.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::LineAddr;

    /// Runs `iters` iterations of a synthetic loop whose i-th iteration
    /// touches `base + i * stride + offsets`.
    fn run_strided(
        p: &mut CbwsPredictor,
        id: BlockId,
        iters: u64,
        base: u64,
        stride: u64,
        offsets: &[u64],
    ) -> Vec<Vec<LineAddr>> {
        let mut preds = Vec::new();
        for i in 0..iters {
            p.block_begin(id);
            for &o in offsets {
                p.observe(LineAddr(base + i * stride + o));
            }
            preds.push(p.block_end(id));
        }
        preds
    }

    #[test]
    fn constant_stride_loop_predicts_next_ws() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        let preds = run_strided(&mut p, BlockId(0), 12, 1000, 16, &[0, 3, 7]);
        // After warm-up (history depth 3 + training), predictions appear.
        let last = preds.last().unwrap();
        assert!(!last.is_empty(), "steady-state loop should predict");
        // 1-step prediction of iteration 12: lines 1000+12*16 + {0,3,7}.
        let expect: Vec<LineAddr> = [0u64, 3, 7].map(|o| LineAddr(1000 + 12 * 16 + o)).to_vec();
        assert_eq!(&last[..3], &expect[..]);
        assert!(p.is_confident());
        assert!(p.stats().prediction_hits > 0);
    }

    #[test]
    fn two_step_prediction_reaches_farther() {
        let cfg = CbwsConfig {
            prediction_depth: 2,
            ..CbwsConfig::default()
        };
        let mut p = CbwsPredictor::new(cfg);
        let preds = run_strided(&mut p, BlockId(0), 12, 0, 100, &[0]);
        let last = preds.last().unwrap();
        // Steps 1 and 2 predict iterations 12 and 13.
        assert!(last.contains(&LineAddr(1200)));
        assert!(last.contains(&LineAddr(1300)));
    }

    #[test]
    fn cold_start_is_silent() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        let preds = run_strided(&mut p, BlockId(0), 3, 0, 64, &[0, 1]);
        for pred in &preds {
            assert!(pred.is_empty(), "no prediction before the table is trained");
        }
    }

    #[test]
    fn random_walk_never_gains_confidence() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        let mut x: u64 = 7;
        for _ in 0..50 {
            p.block_begin(BlockId(0));
            for _ in 0..4 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                p.observe(LineAddr(x >> 40));
            }
            let _ = p.block_end(BlockId(0));
        }
        // Data-dependent working sets (the histo case, Fig. 16): hit rate
        // should be negligible.
        let s = p.stats();
        assert!(
            s.prediction_hits * 10 < s.blocks,
            "random differentials predicted too often: {s:?}"
        );
    }

    #[test]
    fn block_switch_flushes_state() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        run_strided(&mut p, BlockId(0), 10, 0, 64, &[0]);
        assert!(p.is_confident());
        // A different static block flushes per-loop state and confidence.
        p.block_begin(BlockId(1));
        assert!(!p.is_confident());
        assert_eq!(p.stats().block_switches, 1);
        p.observe(LineAddr(5));
        let pred = p.block_end(BlockId(1));
        assert!(pred.is_empty());
    }

    #[test]
    fn vector_overflow_counted_and_capped() {
        let cfg = CbwsConfig {
            max_vector: 4,
            ..CbwsConfig::default()
        };
        let mut p = CbwsPredictor::new(cfg);
        p.block_begin(BlockId(0));
        for i in 0..10 {
            p.observe(LineAddr(i));
        }
        let _ = p.block_end(BlockId(0));
        assert_eq!(p.stats().vector_overflows, 6);
    }

    #[test]
    fn mismatched_block_end_ignored() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        p.block_begin(BlockId(0));
        p.observe(LineAddr(1));
        let out = p.block_end(BlockId(9));
        assert!(out.is_empty());
        assert_eq!(p.stats().blocks, 0);
    }

    #[test]
    fn observe_outside_block_ignored() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        p.observe(LineAddr(1));
        assert_eq!(p.stats().blocks, 0);
    }

    #[test]
    fn table_survives_many_distinct_patterns_without_growth() {
        let mut p = CbwsPredictor::new(CbwsConfig::default());
        // Alternate between many differential alphabets (the fft /
        // streamcluster failure mode): the 16-entry table must bound state.
        for phase in 0..40u64 {
            run_strided(
                &mut p,
                BlockId(0),
                6,
                phase * 100_000,
                17 + phase * 3,
                &[0, 2],
            );
        }
        assert!(p.table_occupancy() <= 16);
    }

    #[test]
    fn prediction_depth_validated() {
        let cfg = CbwsConfig {
            prediction_depth: 5,
            max_step: 4,
            ..CbwsConfig::default()
        };
        assert!(std::panic::catch_unwind(|| CbwsPredictor::new(cfg)).is_err());
    }

    #[test]
    fn storage_is_under_1kb() {
        let cfg = CbwsConfig::default();
        let bits = cfg.storage_bits();
        assert!(bits < 8 * 1024, "paper claims < 1KB, got {} bits", bits);
        assert_eq!(bits, 8080);
    }

    #[test]
    fn standalone_prefetcher_trait_flow() {
        use cbws_prefetchers::PrefetchContext;
        use cbws_trace::{Addr, Pc};
        let mut pf = CbwsPrefetcher::default();
        let mut out = Vec::new();
        for i in 0..12u64 {
            pf.on_block_begin(BlockId(0));
            for o in [0u64, 5] {
                let ctx = PrefetchContext {
                    pc: Pc(0x40),
                    addr: Addr((1000 + i * 8 + o) * 64),
                    is_store: false,
                    l1_hit: true, // CBWS observes hits too
                    l2_hit: true,
                    in_block: true,
                };
                pf.on_access(&ctx, &mut out);
            }
            out.clear();
            pf.on_block_end(BlockId(0), &mut out);
        }
        assert!(!out.is_empty(), "steady-state loop should prefetch");
        assert_eq!(pf.name(), "CBWS");
        assert!(pf.storage_bits() < 8192);
    }

    #[test]
    fn misses_only_ablation_ignores_hits() {
        let cfg = CbwsConfig {
            observe_l1_hits: false,
            ..CbwsConfig::default()
        };
        let mut pf = CbwsPrefetcher::new(cfg);
        let mut out = Vec::new();
        use cbws_prefetchers::PrefetchContext;
        use cbws_trace::{Addr, Pc};
        for i in 0..12u64 {
            pf.on_block_begin(BlockId(0));
            let ctx = PrefetchContext {
                pc: Pc(0),
                addr: Addr(i * 64 * 8),
                is_store: false,
                l1_hit: true,
                l2_hit: true,
                in_block: true,
            };
            pf.on_access(&ctx, &mut out);
            pf.on_block_end(BlockId(0), &mut out);
        }
        assert!(out.is_empty(), "hits must be invisible in misses-only mode");
    }
}
