//! The integrated CBWS+SMS policy (§VII): CBWS as an add-on that issues the
//! prefetch when its history table hits, and falls back to SMS otherwise.

use crate::predictor::{cbws_metrics, cbws_params, CbwsConfig, CbwsPredictor};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_prefetchers::{PrefetchContext, Prefetcher, SmsConfig, SmsPrefetcher};
use cbws_trace::{BlockId, LineAddr};
use serde::{Deserialize, Serialize};

/// When the hybrid silences the SMS side inside annotated blocks. The paper
/// specifies only that CBWS "issues a prefetch only if the current access
/// pattern hits in the history table; otherwise, the SMS prefetcher issues
/// the prefetch" — these policies span the reasonable readings, and the
/// `ablations` bench compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SmsSuppression {
    /// Pure union: SMS always runs; CBWS adds its block predictions.
    Never,
    /// Silence SMS inside blocks whenever the CBWS history table hit.
    WhenConfident,
    /// Silence SMS inside blocks when the history table hit *and* the block
    /// fits the CBWS vector (oversized blocks, e.g. bzip2's, keep SMS)
    /// *and* the predicted working set leaps farther than one SMS region
    /// per iteration — the §II patterns SMS cannot follow. Slow-moving
    /// working sets keep SMS, whose whole-region lookahead beats CBWS's
    /// few-iterations lead there. The default.
    #[default]
    WhenCovering,
}

/// Arbitration counters for the hybrid policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridStats {
    /// Prefetch candidate lines issued by the CBWS side.
    pub cbws_lines: u64,
    /// Prefetch candidate lines issued by the SMS side.
    pub sms_lines: u64,
    /// SMS candidate lines suppressed because CBWS was confident inside an
    /// annotated block.
    pub sms_suppressed_lines: u64,
}

/// The CBWS+SMS hybrid prefetcher.
///
/// Both engines observe the full access stream. Arbitration follows the
/// paper: "The CBWS prefetcher issues a prefetch only if the current access
/// pattern hits in the history table. Otherwise, the SMS prefetcher issues
/// the prefetch." Concretely, while execution is inside an annotated block
/// and the CBWS predictor's last `BLOCK_END` lookup hit, SMS candidates are
/// suppressed; outside blocks, or when CBWS has no confident prediction,
/// SMS operates normally.
#[derive(Debug, Clone)]
pub struct CbwsSmsPrefetcher {
    cbws: CbwsPredictor,
    sms: SmsPrefetcher,
    policy: SmsSuppression,
    region_lines: u64,
    in_block: bool,
    scratch: Vec<LineAddr>,
    stats: HybridStats,
}

impl CbwsSmsPrefetcher {
    /// Creates the hybrid from both engines' configurations, with the
    /// default arbitration policy.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is degenerate.
    pub fn new(cbws: CbwsConfig, sms: SmsConfig) -> Self {
        Self::with_policy(cbws, sms, SmsSuppression::default())
    }

    /// Creates the hybrid with an explicit arbitration policy.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is degenerate.
    pub fn with_policy(cbws: CbwsConfig, sms: SmsConfig, policy: SmsSuppression) -> Self {
        let region_lines = sms.region_bytes / cbws_trace::LINE_BYTES;
        CbwsSmsPrefetcher {
            cbws: CbwsPredictor::new(cbws),
            sms: SmsPrefetcher::new(sms),
            policy,
            region_lines,
            in_block: false,
            scratch: Vec::new(),
            stats: HybridStats::default(),
        }
    }

    /// Whether SMS candidates are currently silenced.
    fn suppressing(&self) -> bool {
        if !self.in_block || !self.cbws.is_confident() {
            return false;
        }
        match self.policy {
            SmsSuppression::Never => false,
            SmsSuppression::WhenConfident => true,
            SmsSuppression::WhenCovering => {
                !self.cbws.last_block_overflowed()
                    && self.cbws.last_prediction_span() >= self.region_lines
            }
        }
    }

    /// The CBWS prediction engine.
    pub fn cbws(&self) -> &CbwsPredictor {
        &self.cbws
    }

    /// The SMS fallback engine.
    pub fn sms(&self) -> &SmsPrefetcher {
        &self.sms
    }

    /// Arbitration counters.
    pub fn hybrid_stats(&self) -> &HybridStats {
        &self.stats
    }
}

impl Default for CbwsSmsPrefetcher {
    fn default() -> Self {
        CbwsSmsPrefetcher::new(CbwsConfig::default(), SmsConfig::default())
    }
}

impl Describe for CbwsSmsPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let mut d = ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "The headline integrated policy: CBWS issues the prefetch when its \
             differential history table hits; otherwise the SMS engine does. \
             Arbitration is governed by the `suppression` policy — the default \
             silences SMS inside annotated blocks only when CBWS is confident, \
             the block fits the vector, and the predicted working set leaps \
             farther than one SMS region per iteration.",
        )
        .paper_section("§VII (CBWS+SMS)")
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "suppression",
            "when the hybrid silences SMS inside annotated blocks \
             (Never | WhenConfident | WhenCovering; see the ablations bench)",
            format!("{:?}", self.policy),
            "policy enum",
        ))
        .metrics(cbws_metrics())
        .metrics(cbws_describe::instrumented_prefetcher_metrics());
        for p in cbws_params(self.cbws.config()) {
            d = d.param(ParamSpec::new(
                format!("cbws.{}", p.name),
                p.doc,
                p.default,
                p.range,
            ));
        }
        for p in self.sms.describe().params {
            d = d.param(ParamSpec::new(
                format!("sms.{}", p.name),
                p.doc,
                p.default,
                p.range,
            ));
        }
        d
    }
}

impl Prefetcher for CbwsSmsPrefetcher {
    fn name(&self) -> &'static str {
        "CBWS+SMS"
    }

    fn storage_bits(&self) -> u64 {
        self.cbws.config().storage_bits() + self.sms.storage_bits()
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        if self.in_block && (self.cbws.config().observe_l1_hits || ctx.reached_l2()) {
            self.cbws.observe(ctx.addr.line());
        }
        self.scratch.clear();
        self.sms.on_access(ctx, &mut self.scratch);
        if self.suppressing() {
            self.stats.sms_suppressed_lines += self.scratch.len() as u64;
        } else {
            self.stats.sms_lines += self.scratch.len() as u64;
            out.append(&mut self.scratch);
        }
    }

    fn on_block_begin(&mut self, id: BlockId) {
        self.in_block = true;
        self.cbws.block_begin(id);
    }

    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        self.in_block = false;
        let pred = self.cbws.block_end(id);
        self.stats.cbws_lines += pred.len() as u64;
        out.extend(pred);
    }

    fn attach_telemetry(&mut self, telemetry: &cbws_telemetry::Telemetry) {
        self.cbws.set_telemetry(telemetry.clone());
        self.sms.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::{Addr, Pc};

    fn ctx(pc: u64, addr: u64, l1_hit: bool) -> PrefetchContext {
        PrefetchContext {
            pc: Pc(pc),
            addr: Addr(addr),
            is_store: false,
            l1_hit,
            l2_hit: false,
            in_block: false,
        }
    }

    /// Drives a strided annotated loop through the hybrid.
    fn drive_loop(pf: &mut CbwsSmsPrefetcher, iters: u64, stride: u64) -> Vec<LineAddr> {
        let mut all = Vec::new();
        for i in 0..iters {
            pf.on_block_begin(BlockId(0));
            let mut out = Vec::new();
            pf.on_access(&ctx(0x40, i * stride, false), &mut out);
            pf.on_access(&ctx(0x44, 1 << 24 | (i * stride), false), &mut out);
            all.append(&mut out);
            pf.on_block_end(BlockId(0), &mut out);
            all.extend(out);
        }
        all
    }

    #[test]
    fn cbws_side_predicts_in_steady_state() {
        let mut pf = CbwsSmsPrefetcher::default();
        drive_loop(&mut pf, 15, 512);
        assert!(
            pf.hybrid_stats().cbws_lines > 0,
            "CBWS side should contribute"
        );
        assert!(pf.cbws().is_confident());
    }

    #[test]
    fn sms_suppressed_when_cbws_confident() {
        let mut pf = CbwsSmsPrefetcher::with_policy(
            CbwsConfig::default(),
            SmsConfig::default(),
            SmsSuppression::WhenConfident,
        );
        // A dense region walk trains SMS while CBWS also gains confidence:
        // accesses stay within 2KB regions and stride regularly.
        for i in 0..600u64 {
            pf.on_block_begin(BlockId(0));
            let mut out = Vec::new();
            // 2 granules per region; new region every 16 iterations.
            let addr = i * 128;
            pf.on_access(&ctx(0x40, addr, false), &mut out);
            pf.on_access(&ctx(0x44, addr + 64, false), &mut out);
            pf.on_block_end(BlockId(0), &mut out);
        }
        assert!(
            pf.hybrid_stats().sms_suppressed_lines > 0,
            "confident CBWS should suppress SMS inside blocks: {:?}",
            pf.hybrid_stats()
        );
    }

    #[test]
    fn covering_policy_keeps_sms_on_slow_moving_loops() {
        // Same dense region walk under the default policy: the predicted
        // strides (2 lines) are far below the 32-line region span, so SMS
        // keeps running even though CBWS is confident.
        let mut pf = CbwsSmsPrefetcher::default();
        for i in 0..600u64 {
            pf.on_block_begin(BlockId(0));
            let mut out = Vec::new();
            let addr = i * 128;
            pf.on_access(&ctx(0x40, addr, false), &mut out);
            pf.on_access(&ctx(0x44, addr + 64, false), &mut out);
            pf.on_block_end(BlockId(0), &mut out);
        }
        assert!(pf.cbws().is_confident());
        assert_eq!(pf.hybrid_stats().sms_suppressed_lines, 0);
        assert!(pf.hybrid_stats().sms_lines > 0);
    }

    #[test]
    fn covering_policy_suppresses_region_spanning_loops() {
        // A stencil-like loop leaping 64 lines per iteration: the predicted
        // span exceeds the region size, so a trained SMS trigger inside the
        // block is silenced.
        let mut pf = CbwsSmsPrefetcher::default();
        for i in 0..600u64 {
            pf.on_block_begin(BlockId(0));
            let mut out = Vec::new();
            let addr = i * 4096;
            pf.on_access(&ctx(0x40, addr, false), &mut out);
            pf.on_access(&ctx(0x44, addr + 128, false), &mut out);
            pf.on_block_end(BlockId(0), &mut out);
        }
        assert!(pf.cbws().is_confident());
        assert!(pf.cbws().last_prediction_span() >= 32);
        let s = pf.hybrid_stats();
        assert!(
            s.sms_suppressed_lines > 0 || s.sms_lines == 0,
            "SMS must not stream inside region-spanning loops: {s:?}"
        );
    }

    #[test]
    fn sms_operates_outside_blocks() {
        let mut pf = CbwsSmsPrefetcher::default();
        // Train SMS outside any block: region patterns at a fixed PC.
        let mut out = Vec::new();
        for r in 0..40u64 {
            for g in [0u64, 3, 5] {
                pf.on_access(&ctx(0x80, r * 2048 + g * 128, false), &mut out);
            }
        }
        assert!(
            pf.hybrid_stats().sms_lines > 0 || !out.is_empty(),
            "SMS must run outside annotated blocks"
        );
    }

    #[test]
    fn fallback_on_unpredictable_blocks() {
        let mut pf = CbwsSmsPrefetcher::default();
        // Data-dependent (pseudo-random) block working sets: CBWS never
        // gains confidence, so SMS is never suppressed.
        let mut x: u64 = 3;
        for _ in 0..100 {
            pf.on_block_begin(BlockId(0));
            let mut out = Vec::new();
            for _ in 0..3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                pf.on_access(&ctx(0x40, (x >> 30) & 0xFFFF_FFC0, false), &mut out);
            }
            pf.on_block_end(BlockId(0), &mut out);
        }
        assert_eq!(pf.hybrid_stats().sms_suppressed_lines, 0);
    }

    #[test]
    fn storage_is_sum_of_parts() {
        let pf = CbwsSmsPrefetcher::default();
        assert_eq!(pf.storage_bits(), 8080 + 41536);
        assert_eq!(pf.name(), "CBWS+SMS");
    }
}
