#![warn(missing_docs)]

//! Self-description layer for the CBWS simulator.
//!
//! Every simulated component — the prefetchers in `cbws-prefetchers` and
//! `cbws-core`, the out-of-order core in `cbws-sim-cpu`, the memory
//! hierarchy in `cbws-sim-mem` — implements [`Describe`] and reports, as
//! data rather than prose:
//!
//! * its display **name** and the **paper section** it models,
//! * its **state budget** in bits (Table III accounting),
//! * every **tunable parameter** with default, range, and paper anchor,
//! * the **telemetry metric paths** it emits (see `cbws-telemetry`).
//!
//! The `docgen` crate turns these [`ComponentDescription`]s into the
//! generated reference book, and its `--check` mode cross-checks them
//! against the committed `results/` artifacts — so the documentation can
//! never drift from the code that defines the component.
//!
//! # Example
//!
//! ```
//! use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
//!
//! struct Toy {
//!     entries: usize,
//! }
//!
//! impl Describe for Toy {
//!     fn describe(&self) -> ComponentDescription {
//!         ComponentDescription::new("Toy", ComponentKind::Prefetcher, "a toy prefetcher")
//!             .paper_section("§0")
//!             .storage_bits(self.entries as u64 * 8)
//!             .param(ParamSpec::new("entries", "table entries", self.entries.to_string(), "≥ 1"))
//!     }
//! }
//!
//! let d = Toy { entries: 16 }.describe();
//! assert_eq!(d.name, "Toy");
//! assert_eq!(d.storage_bits, Some(128));
//! assert_eq!(d.params[0].default, "16");
//! ```

use serde::{Deserialize, Serialize};

/// What role a described component plays in the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// A hardware prefetcher (baseline, CBWS scheme, or extension).
    Prefetcher,
    /// The out-of-order core timing model.
    CpuModel,
    /// The cache hierarchy / memory timing model.
    MemoryModel,
}

impl ComponentKind {
    /// Human-readable label used in generated pages.
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Prefetcher => "prefetcher",
            ComponentKind::CpuModel => "CPU model",
            ComponentKind::MemoryModel => "memory model",
        }
    }
}

/// One tunable parameter of a component: its machine name, documentation,
/// the default in force, and the legal range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Field name in the component's config struct (e.g. `table_entries`).
    pub name: String,
    /// What the parameter does, including the paper anchor where one
    /// exists (e.g. "differential history table entries (§V-A: 16)").
    pub doc: String,
    /// The default value actually in force, rendered as text.
    pub default: String,
    /// The legal range or constraint, rendered as text (e.g. "≥ 1",
    /// "power of two").
    pub range: String,
}

impl ParamSpec {
    /// Creates a parameter spec.
    pub fn new(
        name: impl Into<String>,
        doc: impl Into<String>,
        default: impl Into<String>,
        range: impl Into<String>,
    ) -> Self {
        ParamSpec {
            name: name.into(),
            doc: doc.into(),
            default: default.into(),
            range: range.into(),
        }
    }
}

/// The kind of telemetry metric a component emits at a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic counter (`Telemetry::count`).
    Counter,
    /// Last-value gauge (`Telemetry::set_gauge`).
    Gauge,
    /// Log2-bucketed histogram (`Telemetry::observe`).
    Histogram,
}

impl MetricKind {
    /// Human-readable label used in generated pages.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One dotted-path telemetry metric a component emits when a `Telemetry`
/// sink is attached (see the `cbws-telemetry` crate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSpec {
    /// Dotted metric path (e.g. `cbws.table.hit`).
    pub path: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// What the metric measures.
    pub doc: String,
}

impl MetricSpec {
    /// Creates a counter metric spec.
    pub fn counter(path: impl Into<String>, doc: impl Into<String>) -> Self {
        MetricSpec {
            path: path.into(),
            kind: MetricKind::Counter,
            doc: doc.into(),
        }
    }

    /// Creates a gauge metric spec.
    pub fn gauge(path: impl Into<String>, doc: impl Into<String>) -> Self {
        MetricSpec {
            path: path.into(),
            kind: MetricKind::Gauge,
            doc: doc.into(),
        }
    }

    /// Creates a histogram metric spec.
    pub fn histogram(path: impl Into<String>, doc: impl Into<String>) -> Self {
        MetricSpec {
            path: path.into(),
            kind: MetricKind::Histogram,
            doc: doc.into(),
        }
    }
}

/// Structured self-description of one simulated component.
///
/// Built with the builder-style methods; rendered into reference pages by
/// `docgen` and cross-checked against `results/` artifacts by
/// `docgen --check`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentDescription {
    /// Display name matching the paper's figure legends (e.g. `CBWS+SMS`).
    pub name: String,
    /// The component's role.
    pub kind: ComponentKind,
    /// One-paragraph summary of what the component models.
    pub summary: String,
    /// Paper anchor (e.g. `§V, Fig. 8, Algorithm 1`). Empty for
    /// beyond-paper extensions, which set [`ComponentDescription::extension`].
    pub paper_section: String,
    /// Total state budget in bits, following Table III's accounting.
    /// `None` for timing models, whose state is not prefetcher storage.
    pub storage_bits: Option<u64>,
    /// Whether this component is a beyond-paper extension (§III-A related
    /// work reproduced for comparison) rather than an evaluated §VII
    /// configuration.
    pub extension: bool,
    /// Tunable parameters with defaults and ranges.
    pub params: Vec<ParamSpec>,
    /// Telemetry metric paths the component emits.
    pub metrics: Vec<MetricSpec>,
}

impl ComponentDescription {
    /// Creates a description with the mandatory fields; everything else is
    /// filled by the builder methods.
    pub fn new(name: impl Into<String>, kind: ComponentKind, summary: impl Into<String>) -> Self {
        ComponentDescription {
            name: name.into(),
            kind,
            summary: summary.into(),
            paper_section: String::new(),
            storage_bits: None,
            extension: false,
            params: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Sets the paper anchor.
    pub fn paper_section(mut self, section: impl Into<String>) -> Self {
        self.paper_section = section.into();
        self
    }

    /// Sets the Table III state budget in bits.
    pub fn storage_bits(mut self, bits: u64) -> Self {
        self.storage_bits = Some(bits);
        self
    }

    /// Marks the component as a beyond-paper extension.
    pub fn extension(mut self) -> Self {
        self.extension = true;
        self
    }

    /// Appends one tunable parameter.
    pub fn param(mut self, p: ParamSpec) -> Self {
        self.params.push(p);
        self
    }

    /// Appends one emitted metric.
    pub fn metric(mut self, m: MetricSpec) -> Self {
        self.metrics.push(m);
        self
    }

    /// Appends several emitted metrics.
    pub fn metrics(mut self, ms: impl IntoIterator<Item = MetricSpec>) -> Self {
        self.metrics.extend(ms);
        self
    }

    /// State budget in KB (Table III's unit), if the component has one.
    pub fn storage_kb(&self) -> Option<f64> {
        self.storage_bits.map(|b| b as f64 / 8192.0)
    }

    /// The description as pretty-printed JSON (used by snapshot tests and
    /// machine consumers).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("description serialization is infallible")
    }
}

/// A component that can describe itself as structured data.
///
/// Implemented by every prefetcher the harness can build and by the
/// simulator timing models; `docgen` renders the output into the
/// generated reference (one page per component) so the documentation is
/// derived from the code rather than hand-written.
pub trait Describe {
    /// The component's self-description under its current configuration.
    fn describe(&self) -> ComponentDescription;
}

/// The metrics every prefetcher emits through the harness's
/// `InstrumentedPrefetcher` wrapper, shared by all implementations.
pub fn instrumented_prefetcher_metrics() -> Vec<MetricSpec> {
    vec![
        MetricSpec::counter("prefetcher.accesses", "demand accesses observed"),
        MetricSpec::counter(
            "prefetcher.candidates",
            "candidate lines emitted across all hooks",
        ),
        MetricSpec::counter("prefetcher.block_begins", "BLOCK_BEGIN markers observed"),
        MetricSpec::counter("prefetcher.block_ends", "BLOCK_END markers observed"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_every_field() {
        let d = ComponentDescription::new("X", ComponentKind::Prefetcher, "sum")
            .paper_section("§V")
            .storage_bits(8192)
            .extension()
            .param(ParamSpec::new("n", "doc", "4", "≥ 1"))
            .metric(MetricSpec::counter("x.hits", "hits"));
        assert_eq!(d.name, "X");
        assert_eq!(d.paper_section, "§V");
        assert_eq!(d.storage_kb(), Some(1.0));
        assert!(d.extension);
        assert_eq!(d.params.len(), 1);
        assert_eq!(d.metrics.len(), 1);
        assert_eq!(d.metrics[0].kind.label(), "counter");
    }

    #[test]
    fn json_round_trips() {
        let d = ComponentDescription::new("Y", ComponentKind::MemoryModel, "mem")
            .param(ParamSpec::new("latency", "cycles", "300", "≥ 1"))
            .metric(MetricSpec::histogram("l2.demand.latency", "latency"));
        let back: ComponentDescription = serde_json::from_str(&d.to_json()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn shared_instrumented_metrics_are_prefetcher_scoped() {
        let ms = instrumented_prefetcher_metrics();
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.path.starts_with("prefetcher.")));
    }
}
