#![warn(missing_docs)]

//! Baseline hardware prefetchers evaluated by the CBWS paper, and the
//! [`Prefetcher`] trait shared with the CBWS schemes in `cbws-core`.
//!
//! Implemented baselines (§VII, Table II):
//!
//! * [`NullPrefetcher`] — the no-prefetching configuration.
//! * [`StridePrefetcher`] — classic PC-indexed stride prefetching
//!   (Fu/Patel/Janssens; Jouppi), 256-entry fully-associative table.
//! * [`GhbPrefetcher`] in [`GhbKind::GlobalDeltaCorrelation`] mode —
//!   GHB G/DC of Nesbit & Smith, 256 entries, history 3, degree 3.
//! * [`GhbPrefetcher`] in [`GhbKind::PcDeltaCorrelation`] mode —
//!   GHB PC/DC, same budget.
//! * [`SmsPrefetcher`] — Spatial Memory Streaming (Somogyi et al.):
//!   32-entry accumulation table, 32-entry filter table, 512-entry pattern
//!   history table, 2 KB regions.
//!
//! All prefetchers observe the committed demand-access stream annotated with
//! hit/miss levels and emit candidate lines to prefetch **into the L2**, as
//! configured in the paper. Each prefetcher applies its own training filter
//! (e.g. GHB trains on misses only; SMS observes L2 accesses).
//!
//! # Example
//!
//! ```
//! use cbws_prefetchers::{Prefetcher, StridePrefetcher, PrefetchContext};
//! use cbws_trace::{Addr, Pc};
//!
//! let mut pf = StridePrefetcher::default();
//! let mut out = Vec::new();
//! for i in 0..4u64 {
//!     let ctx = PrefetchContext::demand_miss(Pc(0x40), Addr(i * 256));
//!     pf.on_access(&ctx, &mut out);
//! }
//! // A confirmed 256-byte (4-line) stride yields predictions.
//! assert!(!out.is_empty());
//! ```

mod ampm;
mod fdp;
mod ghb;
mod instrumented;
mod markov;
mod sms;
mod stems;
mod stride;

pub use ampm::{AmpmConfig, AmpmPrefetcher};
pub use fdp::{FdpConfig, FdpStats, FeedbackDirected};
pub use ghb::{GhbConfig, GhbKind, GhbPrefetcher};
pub use instrumented::InstrumentedPrefetcher;
pub use markov::{MarkovConfig, MarkovPrefetcher};
pub use sms::{SmsConfig, SmsPrefetcher};
pub use stems::{StemsConfig, StemsPrefetcher};
pub use stride::{StrideConfig, StridePrefetcher};

use cbws_trace::{Addr, BlockId, LineAddr, Pc};

/// One committed demand access as observed by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchContext {
    /// PC of the memory instruction.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Whether the access was a store.
    pub is_store: bool,
    /// Whether the access hit in the L1 (if so it never reached the L2).
    pub l1_hit: bool,
    /// Whether the access hit in the L2 (only meaningful when `!l1_hit`;
    /// in-flight and queued prefetch hits count as misses here).
    pub l2_hit: bool,
    /// Whether the access committed inside an annotated code block.
    pub in_block: bool,
}

impl PrefetchContext {
    /// A convenience constructor for an access that missed both levels.
    pub fn demand_miss(pc: Pc, addr: Addr) -> Self {
        PrefetchContext {
            pc,
            addr,
            is_store: false,
            l1_hit: false,
            l2_hit: false,
            in_block: false,
        }
    }

    /// Whether the access reached the L2 (i.e. missed in the L1).
    pub fn reached_l2(&self) -> bool {
        !self.l1_hit
    }

    /// Whether the access missed in the last-level cache.
    pub fn llc_miss(&self) -> bool {
        !self.l1_hit && !self.l2_hit
    }
}

/// A hardware prefetcher observing the committed access stream.
///
/// Implementations push candidate line addresses into `out`; the simulation
/// harness deduplicates against cache/queue state and issues them to the
/// memory hierarchy. Pushing into a caller-provided buffer avoids a
/// per-access allocation.
pub trait Prefetcher {
    /// Short display name (used in result tables, e.g. `"SMS"`).
    fn name(&self) -> &'static str;

    /// Estimated storage budget in bits, following the accounting style of
    /// the paper's Table III.
    fn storage_bits(&self) -> u64;

    /// Observes one committed demand access and appends prefetch candidate
    /// lines to `out`.
    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>);

    /// Observes a committed `BLOCK_BEGIN(id)` instruction. Baselines ignore
    /// block boundaries; the CBWS schemes override this.
    fn on_block_begin(&mut self, _id: BlockId) {}

    /// Observes a committed `BLOCK_END(id)` instruction and may append
    /// prefetch candidates (the CBWS prediction point).
    fn on_block_end(&mut self, _id: BlockId, _out: &mut Vec<LineAddr>) {}

    /// Attaches a telemetry sink for prefetcher-internal observability
    /// (e.g. the CBWS differential-history-table lookups). Stateless
    /// baselines keep the default no-op.
    fn attach_telemetry(&mut self, _telemetry: &cbws_telemetry::Telemetry) {}
}

impl<P: Prefetcher + ?Sized> Prefetcher for Box<P> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn storage_bits(&self) -> u64 {
        self.as_ref().storage_bits()
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        self.as_mut().on_access(ctx, out);
    }

    fn on_block_begin(&mut self, id: BlockId) {
        self.as_mut().on_block_begin(id);
    }

    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        self.as_mut().on_block_end(id, out);
    }

    fn attach_telemetry(&mut self, telemetry: &cbws_telemetry::Telemetry) {
        self.as_mut().attach_telemetry(telemetry);
    }
}

/// The no-prefetching baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl cbws_describe::Describe for NullPrefetcher {
    fn describe(&self) -> cbws_describe::ComponentDescription {
        cbws_describe::ComponentDescription::new(
            Prefetcher::name(self),
            cbws_describe::ComponentKind::Prefetcher,
            "The no-prefetching configuration: observes the demand stream and \
             never emits a candidate. Baseline for MPKI and perf/cost \
             normalization (Figs. 12 and 15).",
        )
        .paper_section("§VII (baseline)")
        .storage_bits(0)
        .metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "No-Prefetch"
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn on_access(&mut self, _ctx: &PrefetchContext, _out: &mut Vec<LineAddr>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_inert() {
        let mut pf = NullPrefetcher;
        let mut out = Vec::new();
        pf.on_access(&PrefetchContext::demand_miss(Pc(0), Addr(0)), &mut out);
        pf.on_block_begin(BlockId(0));
        pf.on_block_end(BlockId(0), &mut out);
        assert!(out.is_empty());
        assert_eq!(pf.storage_bits(), 0);
        assert_eq!(pf.name(), "No-Prefetch");
    }

    #[test]
    fn context_level_helpers() {
        let mut c = PrefetchContext::demand_miss(Pc(0), Addr(0));
        assert!(c.reached_l2());
        assert!(c.llc_miss());
        c.l2_hit = true;
        assert!(!c.llc_miss());
        c.l1_hit = true;
        assert!(!c.reached_l2());
    }
}
