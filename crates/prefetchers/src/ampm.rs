//! Access Map Pattern Matching (Ishii, Inaba, Hiraki — JILP 2011).
//!
//! **Extension beyond the paper's evaluation.** The paper discusses AMPM in
//! its related work (§III-A): a zone-based prefetcher that keeps a cache-
//! line bitmap per concentration zone and pattern-matches strides against
//! it, with no PC involvement — and observes that, applied to loops, it
//! finds patterns *inside* an iteration before patterns *across*
//! iterations. Implementing it lets the extended comparison
//! (`ext_comparison` binary) test that observation against CBWS directly.
//!
//! Model: memory is divided into aligned zones (default 4 KB = 64 lines).
//! The most recent zones are tracked with an accessed-bitmap each. On an
//! access to offset `o`, every stride `k` with both `o-k` and `o-2k`
//! already accessed predicts `o+k` (and symmetrically backwards), up to a
//! configurable degree.

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::{LineAddr, LINE_BYTES};

/// AMPM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmpmConfig {
    /// Zone size in bytes (power of two, at most 64 lines).
    pub zone_bytes: u64,
    /// Zones tracked simultaneously (LRU).
    pub zones: usize,
    /// Maximum candidate strides matched per access.
    pub degree: usize,
    /// Largest stride magnitude (in lines) considered.
    pub max_stride: u32,
}

impl Default for AmpmConfig {
    fn default() -> Self {
        AmpmConfig {
            zone_bytes: 4096,
            zones: 64,
            degree: 2,
            max_stride: 16,
        }
    }
}

impl AmpmConfig {
    /// Lines per zone.
    pub fn zone_lines(&self) -> u32 {
        (self.zone_bytes / LINE_BYTES) as u32
    }
}

#[derive(Debug, Clone, Copy)]
struct Zone {
    id: u64,
    map: u64,
    lru: u64,
}

/// The AMPM prefetcher. Observes demand accesses that reach the L2.
#[derive(Debug, Clone)]
pub struct AmpmPrefetcher {
    cfg: AmpmConfig,
    zones: Vec<Zone>,
    stamp: u64,
}

impl AmpmPrefetcher {
    /// Creates an AMPM prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zone larger than 64 lines, zero
    /// zones/degree).
    pub fn new(cfg: AmpmConfig) -> Self {
        assert!(
            cfg.zone_bytes.is_power_of_two(),
            "zone size must be a power of two"
        );
        assert!(
            cfg.zone_lines() >= 2 && cfg.zone_lines() <= 64,
            "zone must be 2..=64 lines"
        );
        assert!(
            cfg.zones > 0 && cfg.degree > 0,
            "zones and degree must be non-zero"
        );
        assert!(cfg.max_stride >= 1, "max_stride must be at least 1");
        AmpmPrefetcher {
            cfg,
            zones: Vec::with_capacity(cfg.zones),
            stamp: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AmpmConfig {
        &self.cfg
    }

    fn zone_of(&self, line: LineAddr) -> (u64, u32) {
        let lines = u64::from(self.cfg.zone_lines());
        (line.0 / lines, (line.0 % lines) as u32)
    }
}

impl Default for AmpmPrefetcher {
    fn default() -> Self {
        AmpmPrefetcher::new(AmpmConfig::default())
    }
}

impl Describe for AmpmPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let c = &self.cfg;
        ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "Access Map Pattern Matching (Ishii, Inaba, Hiraki — JILP 2011): \
             keeps a cache-line bitmap per concentration zone and pattern-matches \
             strides against it with no PC involvement. Implemented to test the \
             paper's §III-A observation that AMPM finds patterns inside an \
             iteration before patterns across iterations.",
        )
        .paper_section("§III-A (related work)")
        .extension()
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "zone_bytes",
            "concentration zone size",
            c.zone_bytes.to_string(),
            "power of two, 2-64 lines",
        ))
        .param(ParamSpec::new(
            "zones",
            "zones tracked simultaneously (LRU)",
            c.zones.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "degree",
            "maximum candidate strides matched per access",
            c.degree.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "max_stride",
            "largest stride magnitude considered, in lines",
            c.max_stride.to_string(),
            "≥ 1",
        ))
        .metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl Prefetcher for AmpmPrefetcher {
    fn name(&self) -> &'static str {
        "AMPM"
    }

    fn storage_bits(&self) -> u64 {
        // Per zone: 36-bit tag + per-line map bit + 8-bit LRU counter.
        let per_zone = 36 + u64::from(self.cfg.zone_lines()) + 8;
        per_zone * self.cfg.zones as u64
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        if !ctx.reached_l2() {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let (zone_id, offset) = self.zone_of(ctx.addr.line());
        let zone_lines = self.cfg.zone_lines();

        let zone = match self.zones.iter_mut().find(|z| z.id == zone_id) {
            Some(z) => z,
            None => {
                if self.zones.len() < self.cfg.zones {
                    self.zones.push(Zone {
                        id: zone_id,
                        map: 0,
                        lru: stamp,
                    });
                    self.zones.last_mut().expect("just pushed")
                } else {
                    let victim = self
                        .zones
                        .iter_mut()
                        .min_by_key(|z| z.lru)
                        .expect("zones non-empty");
                    *victim = Zone {
                        id: zone_id,
                        map: 0,
                        lru: stamp,
                    };
                    victim
                }
            }
        };
        zone.lru = stamp;
        zone.map |= 1 << offset;
        let map = zone.map;
        let zone_base = zone_id * u64::from(zone_lines);

        let set = |o: i64| o >= 0 && o < i64::from(zone_lines) && map & (1 << o) != 0;
        let mut emitted = 0;
        let o = i64::from(offset);
        for k in 1..=i64::from(self.cfg.max_stride) {
            if emitted >= self.cfg.degree {
                break;
            }
            // Forward pattern: o-k and o-2k accessed => prefetch o+k.
            if set(o - k) && set(o - 2 * k) && o + k < i64::from(zone_lines) && !set(o + k) {
                out.push(LineAddr(zone_base + (o + k) as u64));
                emitted += 1;
                continue;
            }
            // Backward pattern: o+k and o+2k accessed => prefetch o-k.
            if set(o + k) && set(o + 2 * k) && o - k >= 0 && !set(o - k) {
                out.push(LineAddr(zone_base + (o - k) as u64));
                emitted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::{Addr, Pc};

    fn miss(line: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(0x40), Addr(line * 64))
    }

    fn drive(pf: &mut AmpmPrefetcher, lines: &[u64]) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for &l in lines {
            out.clear();
            pf.on_access(&miss(l), &mut out);
        }
        out
    }

    #[test]
    fn unit_stride_forward_pattern() {
        let mut pf = AmpmPrefetcher::default();
        // Lines 100, 101, 102 in one zone (zone 1, offsets 36, 37, 38).
        let out = drive(&mut pf, &[100, 101, 102]);
        assert_eq!(out[0], LineAddr(103));
    }

    #[test]
    fn strided_pattern_within_zone() {
        let mut pf = AmpmPrefetcher::default();
        // Stride 5 within zone 0: offsets 0, 5, 10 => predict 15.
        let out = drive(&mut pf, &[0, 5, 10]);
        assert!(out.contains(&LineAddr(15)), "{out:?}");
    }

    #[test]
    fn backward_stream_detected() {
        let mut pf = AmpmPrefetcher::default();
        let out = drive(&mut pf, &[40, 39, 38]);
        assert!(out.contains(&LineAddr(37)), "{out:?}");
    }

    #[test]
    fn cross_zone_strides_invisible() {
        // The paper's critique: AMPM only sees patterns within a zone, so
        // the stencil's 1024-line strides produce nothing.
        let mut pf = AmpmPrefetcher::default();
        let out = drive(&mut pf, &[0, 1024, 2048, 3072]);
        assert!(out.is_empty());
    }

    #[test]
    fn no_pattern_no_prefetch() {
        let mut pf = AmpmPrefetcher::default();
        let out = drive(&mut pf, &[0, 7, 23, 41]);
        assert!(out.is_empty());
    }

    #[test]
    fn degree_caps_emissions() {
        let cfg = AmpmConfig {
            degree: 1,
            ..AmpmConfig::default()
        };
        let mut pf = AmpmPrefetcher::new(cfg);
        // Dense map matches many strides; only one candidate may be issued.
        let out = drive(&mut pf, &[0, 1, 2, 3, 4, 5, 6]);
        assert!(out.len() <= 1);
    }

    #[test]
    fn zone_capacity_bounded_lru() {
        let cfg = AmpmConfig {
            zones: 4,
            ..AmpmConfig::default()
        };
        let mut pf = AmpmPrefetcher::new(cfg);
        for z in 0..100u64 {
            drive(&mut pf, &[z * 64]);
        }
        assert!(pf.zones.len() <= 4);
    }

    #[test]
    fn l1_hits_ignored() {
        let mut pf = AmpmPrefetcher::default();
        let mut out = Vec::new();
        for l in [100u64, 101, 102] {
            let mut c = miss(l);
            c.l1_hit = true;
            pf.on_access(&c, &mut out);
        }
        assert!(out.is_empty());
        assert!(pf.zones.is_empty());
    }

    #[test]
    fn storage_accounting() {
        let pf = AmpmPrefetcher::default();
        // 64 zones x (36 + 64 + 8) bits = 6912 bits ~ 0.84 KB.
        assert_eq!(pf.storage_bits(), 64 * 108);
    }
}
