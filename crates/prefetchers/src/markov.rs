//! Markov prefetching (Joseph & Grunwald, ISCA 1997).
//!
//! **Extension beyond the paper's evaluation.** The paper's related work
//! (§III-A) describes it as "a probabilistic model that correlates
//! consecutive pairs of memory addresses" and argues CBWS improves on it by
//! associating whole address *sets* with code blocks. Implementing it lets
//! the extended comparison measure that claim.
//!
//! Model: a direct-mapped correlation table maps a miss address to its two
//! most recent successors in the global miss stream; on a miss, both
//! remembered successors are prefetched.

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::LineAddr;

/// Markov-prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovConfig {
    /// Correlation-table entries (power of two, direct-mapped).
    pub entries: usize,
    /// Successors remembered (and prefetched) per entry, at most 4.
    pub successors: usize,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            entries: 4096,
            successors: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    line: LineAddr,
    valid: bool,
    successors: [LineAddr; 4],
    count: usize,
}

/// The Markov prefetcher. Trains on the LLC miss stream.
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    cfg: MarkovConfig,
    table: Vec<Entry>,
    last_miss: Option<LineAddr>,
}

impl MarkovPrefetcher {
    /// Creates a Markov prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `successors` is not in
    /// `1..=4`.
    pub fn new(cfg: MarkovConfig) -> Self {
        assert!(
            cfg.entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(
            (1..=4).contains(&cfg.successors),
            "successors must be 1..=4"
        );
        MarkovPrefetcher {
            table: vec![Entry::default(); cfg.entries],
            cfg,
            last_miss: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MarkovConfig {
        &self.cfg
    }

    fn slot(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.cfg.entries - 1)
    }

    /// Records `next` as the most recent successor of `prev` (MRU-first,
    /// deduplicated).
    fn train(&mut self, prev: LineAddr, next: LineAddr) {
        let k = self.cfg.successors;
        let slot = self.slot(prev);
        let e = &mut self.table[slot];
        if !e.valid || e.line != prev {
            *e = Entry {
                line: prev,
                valid: true,
                successors: Default::default(),
                count: 0,
            };
        }
        if let Some(pos) = e.successors[..e.count].iter().position(|&s| s == next) {
            // Move to MRU.
            e.successors[..=pos].rotate_right(1);
        } else {
            let new_count = (e.count + 1).min(k);
            e.successors[..new_count].rotate_right(1);
            e.count = new_count;
        }
        e.successors[0] = next;
    }

    fn predict(&self, line: LineAddr, out: &mut Vec<LineAddr>) {
        let e = self.table[self.slot(line)];
        if e.valid && e.line == line {
            out.extend_from_slice(&e.successors[..e.count]);
        }
    }
}

impl Default for MarkovPrefetcher {
    fn default() -> Self {
        MarkovPrefetcher::new(MarkovConfig::default())
    }
}

impl Describe for MarkovPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let c = &self.cfg;
        ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "Markov prefetching (Joseph & Grunwald, ISCA 1997): a direct-mapped \
             correlation table mapping each miss line to its most recent \
             successors in the global miss stream, all prefetched on a miss. \
             Tests §III-A's claim that address sets bound to code blocks beat \
             pairwise correlation.",
        )
        .paper_section("§III-A (related work)")
        .extension()
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "entries",
            "direct-mapped correlation-table entries",
            c.entries.to_string(),
            "power of two ≥ 1",
        ))
        .param(ParamSpec::new(
            "successors",
            "successors remembered (and prefetched) per entry",
            c.successors.to_string(),
            "1-4",
        ))
        .metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "Markov"
    }

    fn storage_bits(&self) -> u64 {
        // Entry: 36-bit tag + successors x 32-bit lines + valid/count.
        (36 + self.cfg.successors as u64 * 32 + 4) * self.cfg.entries as u64
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        if !ctx.llc_miss() {
            return;
        }
        let line = ctx.addr.line();
        if let Some(prev) = self.last_miss {
            if prev != line {
                self.train(prev, line);
            }
        }
        self.last_miss = Some(line);
        self.predict(line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::{Addr, Pc};

    fn miss(line: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(0x40), Addr(line * 64))
    }

    fn drive(pf: &mut MarkovPrefetcher, lines: &[u64]) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for &l in lines {
            out.clear();
            pf.on_access(&miss(l), &mut out);
        }
        out
    }

    #[test]
    fn learns_pair_correlation() {
        let mut pf = MarkovPrefetcher::default();
        // Sequence A B ... A: on the second A, predict B.
        let out = drive(&mut pf, &[100, 200, 300, 100]);
        assert_eq!(out, vec![LineAddr(200)]);
    }

    #[test]
    fn remembers_two_successors_mru_first() {
        let mut pf = MarkovPrefetcher::default();
        // A->B then A->C: both remembered, C most recent.
        let out = drive(&mut pf, &[100, 200, 100, 300, 100]);
        assert_eq!(out, vec![LineAddr(300), LineAddr(200)]);
    }

    #[test]
    fn repeated_successor_does_not_duplicate() {
        let mut pf = MarkovPrefetcher::default();
        let out = drive(&mut pf, &[100, 200, 100, 200, 100]);
        assert_eq!(out, vec![LineAddr(200)]);
    }

    #[test]
    fn cold_misses_silent() {
        let mut pf = MarkovPrefetcher::default();
        let out = drive(&mut pf, &[1, 2, 3, 4, 5]);
        assert!(out.is_empty());
    }

    #[test]
    fn hits_do_not_train() {
        let mut pf = MarkovPrefetcher::default();
        let mut out = Vec::new();
        for l in [100u64, 200, 100] {
            let mut c = miss(l);
            c.l2_hit = true;
            pf.on_access(&c, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn direct_mapped_aliasing_replaces() {
        let cfg = MarkovConfig {
            entries: 2,
            successors: 2,
        };
        let mut pf = MarkovPrefetcher::new(cfg);
        // Lines 100 and 102 alias (entries=2, both even): later training
        // evicts the earlier tag.
        drive(&mut pf, &[100, 1, 102, 3]);
        let out = drive(&mut pf, &[100]);
        assert!(out.is_empty(), "aliased entry must not mispredict: {out:?}");
    }

    #[test]
    fn storage_accounting() {
        let pf = MarkovPrefetcher::default();
        // 4096 x (36 + 64 + 4) bits = 52 KB.
        assert_eq!(pf.storage_bits(), 4096 * 104);
    }
}
