//! STeMS-lite: spatio-temporal memory streaming (Somogyi et al., ISCA
//! 2009), simplified.
//!
//! **Extension beyond the paper's evaluation.** The paper's related work
//! (§III-A) singles out STeMS for two properties: it chains SMS's spatial
//! footprints *temporally* (so whole sequences of regions stream in,
//! paced, rather than one region at a time) and it "imposes a fairly large
//! storage overhead (~640 KB)" — two orders of magnitude above CBWS's
//! 1 KB. This module reproduces both properties with a simplified design:
//!
//! * a direct-mapped **footprint table** remembers the line bitmap each
//!   spatial region exhibited in its last generation;
//! * a direct-mapped **transition table** remembers which region followed
//!   which (the temporal chain);
//! * on entering a region, the predicted next regions' footprints are
//!   queued and released *paced* — a few lines per demand access — which
//!   is STeMS's mechanism for avoiding untimely-prefetch pollution.
//!
//! Deliberate simplifications versus the original: no per-miss temporal
//! log reconstruction and no reorder buffer for interleaved streams; the
//! region granularity carries both roles. The storage accounting, with the
//! default 32 K-entry tables, lands at the paper's quoted ~640 KB scale.

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::{LineAddr, LINE_BYTES};

/// STeMS-lite parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StemsConfig {
    /// Spatial region size in bytes (power of two, at most 64 lines).
    pub region_bytes: u64,
    /// Entries in the (direct-mapped) footprint table.
    pub footprint_entries: usize,
    /// Entries in the (direct-mapped) region-transition table.
    pub transition_entries: usize,
    /// How many regions ahead to chain on a region entry.
    pub chain_depth: usize,
    /// Lines released from the paced queue per demand access.
    pub pace: usize,
    /// Paced-queue capacity (oldest dropped on overflow).
    pub queue_capacity: usize,
}

impl Default for StemsConfig {
    fn default() -> Self {
        StemsConfig {
            region_bytes: 2048,
            footprint_entries: 32768,
            transition_entries: 32768,
            chain_depth: 2,
            pace: 4,
            queue_capacity: 256,
        }
    }
}

impl StemsConfig {
    /// Lines per region.
    pub fn region_lines(&self) -> u32 {
        (self.region_bytes / LINE_BYTES) as u32
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Footprint {
    region: u64,
    valid: bool,
    pattern: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Transition {
    region: u64,
    valid: bool,
    next: u64,
}

/// The STeMS-lite prefetcher. Observes demand accesses that reach the L2.
#[derive(Debug, Clone)]
pub struct StemsPrefetcher {
    cfg: StemsConfig,
    footprints: Vec<Footprint>,
    transitions: Vec<Transition>,
    /// Region currently being accumulated, with its live pattern.
    current: Option<(u64, u64)>,
    /// Paced release buffer.
    pending: std::collections::VecDeque<LineAddr>,
}

impl StemsPrefetcher {
    /// Creates a STeMS-lite prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero tables, region over 64 lines,
    /// zero pace).
    pub fn new(cfg: StemsConfig) -> Self {
        assert!(
            cfg.region_bytes.is_power_of_two(),
            "region size must be a power of two"
        );
        assert!(
            cfg.region_lines() >= 1 && cfg.region_lines() <= 64,
            "region must be 1..=64 lines"
        );
        assert!(
            cfg.footprint_entries.is_power_of_two() && cfg.transition_entries.is_power_of_two(),
            "table sizes must be powers of two"
        );
        assert!(
            cfg.pace > 0 && cfg.chain_depth > 0,
            "pace and chain depth must be non-zero"
        );
        StemsPrefetcher {
            footprints: vec![Footprint::default(); cfg.footprint_entries],
            transitions: vec![Transition::default(); cfg.transition_entries],
            cfg,
            current: None,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StemsConfig {
        &self.cfg
    }

    /// Lines waiting in the paced queue (diagnostics).
    pub fn pending_lines(&self) -> usize {
        self.pending.len()
    }

    fn region_of(&self, line: LineAddr) -> (u64, u32) {
        let lines = u64::from(self.cfg.region_lines());
        (line.0 / lines, (line.0 % lines) as u32)
    }

    fn store_footprint(&mut self, region: u64, pattern: u64) {
        let slot = (region as usize) & (self.cfg.footprint_entries - 1);
        self.footprints[slot] = Footprint {
            region,
            valid: true,
            pattern,
        };
    }

    fn footprint(&self, region: u64) -> Option<u64> {
        let slot = (region as usize) & (self.cfg.footprint_entries - 1);
        let f = self.footprints[slot];
        (f.valid && f.region == region).then_some(f.pattern)
    }

    fn store_transition(&mut self, from: u64, to: u64) {
        let slot = (from as usize) & (self.cfg.transition_entries - 1);
        self.transitions[slot] = Transition {
            region: from,
            valid: true,
            next: to,
        };
    }

    fn transition(&self, from: u64) -> Option<u64> {
        let slot = (from as usize) & (self.cfg.transition_entries - 1);
        let t = self.transitions[slot];
        (t.valid && t.region == from).then_some(t.next)
    }

    /// Queues the remembered footprint of `region`, skipping `skip_offset`.
    fn queue_region(&mut self, region: u64, skip_offset: Option<u32>) {
        let Some(pattern) = self.footprint(region) else {
            return;
        };
        let base = region * u64::from(self.cfg.region_lines());
        for o in 0..self.cfg.region_lines() {
            if Some(o) == skip_offset || pattern & (1 << o) == 0 {
                continue;
            }
            if self.pending.len() == self.cfg.queue_capacity {
                self.pending.pop_front();
            }
            self.pending.push_back(LineAddr(base + u64::from(o)));
        }
    }

    fn release(&mut self, out: &mut Vec<LineAddr>) {
        for _ in 0..self.cfg.pace {
            match self.pending.pop_front() {
                Some(l) => out.push(l),
                None => break,
            }
        }
    }
}

impl Default for StemsPrefetcher {
    fn default() -> Self {
        StemsPrefetcher::new(StemsConfig::default())
    }
}

impl Describe for StemsPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let c = &self.cfg;
        ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "STeMS-lite (after Somogyi et al., ISCA 2009): chains SMS-style \
             spatial footprints temporally through a region-transition table \
             and releases predicted lines paced, a few per demand access. \
             Reproduces §III-A's ~640 KB storage contrast against CBWS's \
             sub-1 KB budget.",
        )
        .paper_section("§III-A (related work)")
        .extension()
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "region_bytes",
            "spatial region size",
            c.region_bytes.to_string(),
            "power of two, 1-64 lines",
        ))
        .param(ParamSpec::new(
            "footprint_entries",
            "direct-mapped footprint table entries",
            c.footprint_entries.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "transition_entries",
            "direct-mapped region-transition table entries",
            c.transition_entries.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "chain_depth",
            "regions chained ahead on a region entry",
            c.chain_depth.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "pace",
            "lines released from the paced queue per demand access",
            c.pace.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "queue_capacity",
            "paced-queue capacity (oldest dropped on overflow)",
            c.queue_capacity.to_string(),
            "≥ 1",
        ))
        .metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl Prefetcher for StemsPrefetcher {
    fn name(&self) -> &'static str {
        "STeMS"
    }

    fn storage_bits(&self) -> u64 {
        // Footprint entry: 36-bit region tag + per-line pattern bit + valid.
        let fp = (36 + u64::from(self.cfg.region_lines()) + 1) * self.cfg.footprint_entries as u64;
        // Transition entry: 36-bit tag + 36-bit next-region + valid.
        let tr = (36 + 36 + 1) * self.cfg.transition_entries as u64;
        // Paced queue: 32-bit line addresses.
        let q = 32 * self.cfg.queue_capacity as u64;
        fp + tr + q
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        if !ctx.reached_l2() {
            return;
        }
        let (region, offset) = self.region_of(ctx.addr.line());

        match self.current {
            Some((cur, ref mut pattern)) if cur == region => {
                *pattern |= 1 << offset;
            }
            Some((prev, pattern)) => {
                // Region transition: retire the finished generation and
                // learn the temporal edge.
                self.store_footprint(prev, pattern);
                self.store_transition(prev, region);
                self.current = Some((region, 1 << offset));
                // Stream the predicted chain, paced.
                self.queue_region(region, Some(offset));
                let mut hop = region;
                for _ in 1..self.cfg.chain_depth {
                    match self.transition(hop) {
                        Some(next) => {
                            self.queue_region(next, None);
                            hop = next;
                        }
                        None => break,
                    }
                }
            }
            None => {
                self.current = Some((region, 1 << offset));
            }
        }
        self.release(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::{Addr, Pc};

    fn miss(line: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(0x40), Addr(line * 64))
    }

    /// Touches offsets of a region (32 lines per region by default).
    fn touch(pf: &mut StemsPrefetcher, region: u64, offsets: &[u64], out: &mut Vec<LineAddr>) {
        for &o in offsets {
            pf.on_access(&miss(region * 32 + o), out);
        }
    }

    #[test]
    fn temporal_chain_streams_next_region_footprint() {
        let mut pf = StemsPrefetcher::default();
        let mut sink = Vec::new();
        // Epoch 1: visit regions 10 -> 11 with distinct footprints.
        touch(&mut pf, 10, &[0, 3], &mut sink);
        touch(&mut pf, 11, &[1, 5], &mut sink);
        touch(&mut pf, 12, &[0], &mut sink); // retire region 11
        sink.clear();
        // Epoch 2: re-enter region 10; the chain predicts 10's own
        // remembered lines plus region 11's footprint.
        let mut out = Vec::new();
        touch(&mut pf, 10, &[0], &mut out);
        touch(&mut pf, 10, &[3], &mut out); // pace releases more
        assert!(
            out.contains(&LineAddr(10 * 32 + 3)),
            "own footprint: {out:?}"
        );
        assert!(
            out.contains(&LineAddr(11 * 32 + 1)) || out.contains(&LineAddr(11 * 32 + 5)),
            "chained region 11 footprint: {out:?}"
        );
    }

    #[test]
    fn release_is_paced() {
        let cfg = StemsConfig {
            pace: 1,
            ..StemsConfig::default()
        };
        let mut pf = StemsPrefetcher::new(cfg);
        let mut sink = Vec::new();
        // Learn a dense region footprint, then re-trigger it.
        touch(&mut pf, 20, &(0..8u64).collect::<Vec<_>>(), &mut sink);
        touch(&mut pf, 21, &[0], &mut sink);
        sink.clear();
        let mut out = Vec::new();
        pf.on_access(&miss(20 * 32), &mut out);
        assert!(
            out.len() <= 1,
            "pace=1 must release at most one line: {out:?}"
        );
        assert!(pf.pending_lines() > 0, "the rest stays queued");
    }

    #[test]
    fn cold_regions_are_silent() {
        let mut pf = StemsPrefetcher::default();
        let mut out = Vec::new();
        touch(&mut pf, 1, &[0, 1], &mut out);
        touch(&mut pf, 2, &[0], &mut out);
        assert!(out.is_empty(), "nothing learned yet: {out:?}");
    }

    #[test]
    fn storage_is_about_640kb() {
        let pf = StemsPrefetcher::default();
        let kb = pf.storage_bits() as f64 / 8192.0;
        assert!(
            (550.0..750.0).contains(&kb),
            "paper quotes ~640 KB for STeMS, got {kb:.0} KB"
        );
    }

    #[test]
    fn l1_hits_ignored() {
        let mut pf = StemsPrefetcher::default();
        let mut out = Vec::new();
        let mut c = miss(0);
        c.l1_hit = true;
        pf.on_access(&c, &mut out);
        assert!(out.is_empty());
        assert!(pf.current.is_none());
    }

    #[test]
    fn direct_mapped_tables_alias_safely() {
        let cfg = StemsConfig {
            footprint_entries: 4,
            transition_entries: 4,
            ..StemsConfig::default()
        };
        let mut pf = StemsPrefetcher::new(cfg);
        let mut out = Vec::new();
        for r in 0..64u64 {
            touch(&mut pf, r, &[0, 1], &mut out);
        }
        // Aliased entries were overwritten; no panic, bounded state.
        assert_eq!(pf.footprints.len(), 4);
    }
}
