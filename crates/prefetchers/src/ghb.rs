//! Global History Buffer prefetching with delta correlation
//! (Nesbit & Smith, HPCA 2004), in its G/DC and PC/DC variants.
//!
//! The GHB stores recent *miss* addresses per localization key — the single
//! global stream for G/DC, the PC for PC/DC. On a training miss the
//! prefetcher extracts the key's recent delta stream, searches it for the
//! most recent earlier occurrence of the last `history_len` deltas, and
//! prefetches `degree` lines by replaying the deltas that followed that
//! occurrence.
//!
//! Structural note: hardware GHBs are a single circular buffer with per-key
//! link pointers; we model the equivalent observable behaviour with bounded
//! per-key deques (chain truncation ≈ buffer wrap) and an LRU-bounded key
//! index. Storage is accounted with Table III's formulas.

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::{LineAddr, Pc};
use std::collections::VecDeque;

/// Localization mode of the GHB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhbKind {
    /// One global miss stream (GHB G/DC).
    GlobalDeltaCorrelation,
    /// Per-PC miss streams (GHB PC/DC).
    PcDeltaCorrelation,
}

/// GHB parameters (Table II: 256 entries, history length 3, degree 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhbConfig {
    /// Localization mode.
    pub kind: GhbKind,
    /// Total buffer entries (bounds keys tracked and per-key history).
    pub entries: usize,
    /// Number of most-recent deltas forming the correlation key.
    pub history_len: usize,
    /// Lines prefetched per correlation hit.
    pub degree: usize,
    /// Train on all L2 demand accesses (`false` = misses only, the paper's
    /// conservative configuration discussed in §II).
    pub train_on_hits: bool,
}

impl GhbConfig {
    /// The paper's GHB G/DC configuration.
    pub fn gdc() -> Self {
        GhbConfig {
            kind: GhbKind::GlobalDeltaCorrelation,
            entries: 256,
            history_len: 3,
            degree: 3,
            train_on_hits: false,
        }
    }

    /// The paper's GHB PC/DC configuration.
    pub fn pcdc() -> Self {
        GhbConfig {
            kind: GhbKind::PcDeltaCorrelation,
            ..Self::gdc()
        }
    }
}

#[derive(Debug, Clone)]
struct Stream {
    key: u64,
    lines: VecDeque<LineAddr>,
    lru: u64,
}

/// The GHB G/DC / PC/DC prefetcher.
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    cfg: GhbConfig,
    streams: Vec<Stream>,
    per_key_cap: usize,
    key_cap: usize,
    stamp: u64,
}

impl GhbPrefetcher {
    /// Creates a GHB prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries`, `history_len`, or `degree` is zero.
    pub fn new(cfg: GhbConfig) -> Self {
        assert!(cfg.entries > 0, "GHB needs at least one entry");
        assert!(cfg.history_len > 0, "history length must be non-zero");
        assert!(cfg.degree > 0, "degree must be non-zero");
        let (per_key_cap, key_cap) = match cfg.kind {
            GhbKind::GlobalDeltaCorrelation => (cfg.entries, 1),
            // Hardware shares the 256 entries across chains; cap chains at a
            // plausible share and the key index at the entry count.
            GhbKind::PcDeltaCorrelation => (32.min(cfg.entries), cfg.entries),
        };
        GhbPrefetcher {
            cfg,
            streams: Vec::new(),
            per_key_cap,
            key_cap,
            stamp: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GhbConfig {
        &self.cfg
    }

    fn key_of(&self, pc: Pc) -> u64 {
        match self.cfg.kind {
            GhbKind::GlobalDeltaCorrelation => 0,
            GhbKind::PcDeltaCorrelation => pc.0,
        }
    }

    /// Delta-correlation prediction over one stream. `lines` is in
    /// chronological order, most recent last.
    fn predict(lines: &VecDeque<LineAddr>, history_len: usize, degree: usize) -> Vec<i64> {
        let n = lines.len();
        if n < history_len + 2 {
            return Vec::new();
        }
        let deltas: Vec<i64> = (1..n).map(|i| lines[i].delta(lines[i - 1])).collect();
        let m = deltas.len();
        if m < history_len + 1 {
            return Vec::new();
        }
        let key = &deltas[m - history_len..];
        // Most recent earlier occurrence of the key.
        for start in (0..m - history_len).rev() {
            if &deltas[start..start + history_len] == key {
                // Replay the deltas that followed the occurrence; if fewer
                // than `degree` exist, cycle through them (periodic-stream
                // assumption).
                let follow = &deltas[start + history_len..m];
                debug_assert!(!follow.is_empty());
                return (0..degree).map(|k| follow[k % follow.len()]).collect();
            }
        }
        Vec::new()
    }
}

impl Describe for GhbPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let c = &self.cfg;
        let (summary, kind_default) = match c.kind {
            GhbKind::GlobalDeltaCorrelation => (
                "Global History Buffer with global delta correlation \
                 (Nesbit & Smith, HPCA 2004): one global miss stream whose \
                 recent delta sequence is matched against its own history, \
                 replaying the deltas that followed the last occurrence.",
                "G/DC",
            ),
            GhbKind::PcDeltaCorrelation => (
                "Global History Buffer with per-PC delta correlation \
                 (Nesbit & Smith, HPCA 2004): per-PC miss streams whose \
                 recent delta sequence is matched against their own history, \
                 replaying the deltas that followed the last occurrence.",
                "PC/DC",
            ),
        };
        ComponentDescription::new(Prefetcher::name(self), ComponentKind::Prefetcher, summary)
            .paper_section("§VII, Tables II-III (baseline)")
            .storage_bits(self.storage_bits())
            .param(ParamSpec::new(
                "kind",
                "localization mode: one global stream (G/DC) or per-PC streams (PC/DC)",
                kind_default,
                "G/DC | PC/DC",
            ))
            .param(ParamSpec::new(
                "entries",
                "total buffer entries, bounding keys tracked and per-key history (paper: 256)",
                c.entries.to_string(),
                "≥ 1",
            ))
            .param(ParamSpec::new(
                "history_len",
                "most-recent deltas forming the correlation key (paper: 3)",
                c.history_len.to_string(),
                "≥ 1",
            ))
            .param(ParamSpec::new(
                "degree",
                "lines prefetched per correlation hit (paper: 3)",
                c.degree.to_string(),
                "≥ 1",
            ))
            .param(ParamSpec::new(
                "train_on_hits",
                "train on all L2 demand accesses (`false` = misses only, \
                 the paper's conservative configuration)",
                c.train_on_hits.to_string(),
                "bool",
            ))
            .metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        match self.cfg.kind {
            GhbKind::GlobalDeltaCorrelation => "GHB-G/DC",
            GhbKind::PcDeltaCorrelation => "GHB-PC/DC",
        }
    }

    fn storage_bits(&self) -> u64 {
        let e = self.cfg.entries as u64;
        match self.cfg.kind {
            // Table III: (3 history strides + 3 prefetch strides) x 12b x 256.
            GhbKind::GlobalDeltaCorrelation => 6 * 12 * e,
            // Table III: G/DC + a 48-bit PC per entry.
            GhbKind::PcDeltaCorrelation => (6 * 12 + 48) * e,
        }
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        let trains = if self.cfg.train_on_hits {
            ctx.reached_l2()
        } else {
            ctx.llc_miss()
        };
        if !trains {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let key = self.key_of(ctx.pc);
        let line = ctx.addr.line();

        let stream = match self.streams.iter_mut().find(|s| s.key == key) {
            Some(s) => s,
            None => {
                if self.streams.len() >= self.key_cap {
                    let victim = self
                        .streams
                        .iter_mut()
                        .min_by_key(|s| s.lru)
                        .expect("key_cap > 0");
                    victim.key = key;
                    victim.lines.clear();
                    victim.lru = stamp;
                    self.streams
                        .iter_mut()
                        .find(|s| s.key == key)
                        .expect("just assigned")
                } else {
                    self.streams.push(Stream {
                        key,
                        lines: VecDeque::with_capacity(self.per_key_cap),
                        lru: stamp,
                    });
                    self.streams.last_mut().expect("just pushed")
                }
            }
        };
        stream.lru = stamp;
        if stream.lines.len() == self.per_key_cap {
            stream.lines.pop_front();
        }
        stream.lines.push_back(line);

        let deltas = Self::predict(&stream.lines, self.cfg.history_len, self.cfg.degree);
        let mut cursor = line;
        for d in deltas {
            cursor = cursor.offset(d);
            out.push(cursor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::Addr;

    fn miss(pc: u64, line: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(pc), Addr(line * 64))
    }

    fn run(pf: &mut GhbPrefetcher, accesses: &[(u64, u64)]) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for &(pc, line) in accesses {
            out.clear();
            pf.on_access(&miss(pc, line), &mut out);
        }
        out
    }

    #[test]
    fn pcdc_learns_constant_stride() {
        let mut pf = GhbPrefetcher::new(GhbConfig::pcdc());
        // Stride of 16 lines at one PC: after enough history, predict +16s.
        let accs: Vec<(u64, u64)> = (0..8).map(|i| (0x40, 100 + i * 16)).collect();
        let out = run(&mut pf, &accs);
        assert_eq!(out, vec![LineAddr(228), LineAddr(244), LineAddr(260)]);
    }

    #[test]
    fn gdc_learns_interleaved_global_pattern() {
        let mut pf = GhbPrefetcher::new(GhbConfig::gdc());
        // Global periodic delta pattern from two interleaved streams:
        // lines 0, 1000, 4, 1004, 8, 1008, ... => deltas +1000, -996, ...
        let mut accs = Vec::new();
        for i in 0..8u64 {
            accs.push((1, i * 4));
            accs.push((2, 1000 + i * 4));
        }
        let out = run(&mut pf, &accs);
        assert!(!out.is_empty(), "periodic global deltas should correlate");
        // Next predicted deltas continue the period: -996 then +1000...
        assert_eq!(out[0], LineAddr(32));
    }

    #[test]
    fn pcdc_separates_streams_gdc_conflates() {
        // Two PCs with irregular interleaving: PC/DC still sees clean
        // per-PC strides.
        let mut pf = GhbPrefetcher::new(GhbConfig::pcdc());
        let mut accs = Vec::new();
        for i in 0..10u64 {
            accs.push((0x40, i * 7));
            if i % 2 == 0 {
                accs.push((0x80, 100000 + i * 3));
            }
        }
        let out = run(&mut pf, &accs);
        assert!(!out.is_empty());
        assert_eq!(out[0], LineAddr(9 * 7 + 7));
    }

    #[test]
    fn short_history_is_silent() {
        let mut pf = GhbPrefetcher::new(GhbConfig::pcdc());
        let out = run(&mut pf, &[(1, 0), (1, 16), (1, 32)]);
        assert!(out.is_empty(), "needs history_len+1 deltas to correlate");
    }

    #[test]
    fn does_not_train_on_hits_by_default() {
        let mut pf = GhbPrefetcher::new(GhbConfig::pcdc());
        let mut out = Vec::new();
        for i in 0..8u64 {
            let mut c = miss(0x40, i * 16);
            c.l2_hit = true;
            pf.on_access(&c, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn trains_on_hits_when_configured() {
        let cfg = GhbConfig {
            train_on_hits: true,
            ..GhbConfig::pcdc()
        };
        let mut pf = GhbPrefetcher::new(cfg);
        let mut out = Vec::new();
        for i in 0..8u64 {
            let mut c = miss(0x40, i * 16);
            c.l2_hit = true;
            out.clear();
            pf.on_access(&c, &mut out);
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn irregular_stream_is_silent() {
        let mut pf = GhbPrefetcher::new(GhbConfig::pcdc());
        // No repeating delta triple.
        let accs: Vec<(u64, u64)> = [
            (0u64, 0u64),
            (0, 3),
            (0, 9),
            (0, 11),
            (0, 20),
            (0, 22),
            (0, 31),
            (0, 45),
        ]
        .to_vec();
        let out = run(&mut pf, &accs);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_matches_table3() {
        assert_eq!(GhbPrefetcher::new(GhbConfig::gdc()).storage_bits(), 18432); // 2.25KB
        assert_eq!(GhbPrefetcher::new(GhbConfig::pcdc()).storage_bits(), 30720);
        // 3.75KB
    }

    #[test]
    fn key_table_eviction_bounds_state() {
        let cfg = GhbConfig {
            entries: 4,
            ..GhbConfig::pcdc()
        };
        let mut pf = GhbPrefetcher::new(cfg);
        let mut out = Vec::new();
        for pc in 0..100u64 {
            pf.on_access(&miss(pc, pc * 10), &mut out);
        }
        assert!(pf.streams.len() <= 4);
    }

    #[test]
    fn names() {
        assert_eq!(GhbPrefetcher::new(GhbConfig::gdc()).name(), "GHB-G/DC");
        assert_eq!(GhbPrefetcher::new(GhbConfig::pcdc()).name(), "GHB-PC/DC");
    }
}
