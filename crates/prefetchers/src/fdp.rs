//! Feedback-Directed Prefetching (Srinath et al., HPCA 2007) as a generic
//! throttling wrapper.
//!
//! **Extension beyond the paper's evaluation.** The paper borrows FDP's
//! timeliness/accuracy taxonomy for Fig. 13; this module implements the
//! other half of that work — dynamic aggressiveness control — as a wrapper
//! around any [`Prefetcher`]. It measures the wrapped engine's recent
//! accuracy (fraction of emitted lines demanded soon after) over fixed
//! epochs and throttles the number of candidates passed through when
//! accuracy is poor. `ext_comparison` evaluates `FDP(SMS)` next to the
//! paper's schemes; the interesting comparison is that CBWS achieves its
//! accuracy *statically*, from compiler hints, where FDP needs runtime
//! feedback.

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::{BlockId, LineAddr};
use std::collections::VecDeque;

/// FDP throttle parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdpConfig {
    /// Demand accesses per evaluation epoch.
    pub epoch_accesses: u64,
    /// Recent emissions remembered for usefulness matching.
    pub window: usize,
    /// Accuracy (in percent) below which aggressiveness decreases.
    pub low_accuracy_pct: u32,
    /// Accuracy (in percent) above which aggressiveness increases.
    pub high_accuracy_pct: u32,
    /// Number of throttle levels; level `i` passes `i+1` of every
    /// `levels` candidates.
    pub levels: u32,
}

impl Default for FdpConfig {
    fn default() -> Self {
        FdpConfig {
            epoch_accesses: 1024,
            window: 256,
            low_accuracy_pct: 40,
            high_accuracy_pct: 75,
            levels: 4,
        }
    }
}

/// Counters exposed by the throttle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FdpStats {
    /// Candidate lines produced by the wrapped prefetcher.
    pub produced: u64,
    /// Candidate lines passed through after throttling.
    pub issued: u64,
    /// Issued lines later matched by a demand access (within the window).
    pub useful: u64,
    /// Epoch boundaries at which the level decreased.
    pub throttled_down: u64,
    /// Epoch boundaries at which the level increased.
    pub throttled_up: u64,
}

/// A feedback-directed aggressiveness wrapper around any prefetcher.
#[derive(Debug, Clone)]
pub struct FeedbackDirected<P> {
    inner: P,
    cfg: FdpConfig,
    /// Current throttle level in `0..levels` (highest = most aggressive).
    level: u32,
    recent: VecDeque<LineAddr>,
    epoch_accesses: u64,
    epoch_issued: u64,
    epoch_useful: u64,
    scratch: Vec<LineAddr>,
    round_robin: u32,
    stats: FdpStats,
}

impl<P: Prefetcher> FeedbackDirected<P> {
    /// Wraps `inner` with the default FDP throttle.
    pub fn new(inner: P) -> Self {
        Self::with_config(inner, FdpConfig::default())
    }

    /// Wraps `inner` with an explicit throttle configuration.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or the thresholds are inverted.
    pub fn with_config(inner: P, cfg: FdpConfig) -> Self {
        assert!(cfg.levels > 0, "at least one throttle level required");
        assert!(
            cfg.low_accuracy_pct <= cfg.high_accuracy_pct,
            "thresholds must be ordered"
        );
        FeedbackDirected {
            inner,
            level: cfg.levels - 1,
            cfg,
            recent: VecDeque::new(),
            epoch_accesses: 0,
            epoch_issued: 0,
            epoch_useful: 0,
            scratch: Vec::new(),
            round_robin: 0,
            stats: FdpStats::default(),
        }
    }

    /// The wrapped prefetcher.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Current throttle level (`0..levels`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Throttle counters.
    pub fn stats(&self) -> &FdpStats {
        &self.stats
    }

    fn remember(&mut self, line: LineAddr) {
        if self.recent.len() == self.cfg.window {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
    }

    fn epoch_boundary(&mut self) {
        // No evidence: drift back toward aggressive.
        let accuracy_pct = (self.epoch_useful * 100)
            .checked_div(self.epoch_issued)
            .map_or(self.cfg.high_accuracy_pct + 1, |v| v as u32);
        if accuracy_pct < self.cfg.low_accuracy_pct && self.level > 0 {
            self.level -= 1;
            self.stats.throttled_down += 1;
        } else if accuracy_pct > self.cfg.high_accuracy_pct && self.level < self.cfg.levels - 1 {
            self.level += 1;
            self.stats.throttled_up += 1;
        }
        self.epoch_accesses = 0;
        self.epoch_issued = 0;
        self.epoch_useful = 0;
    }

    /// Passes `level+1` of every `levels` candidates through, round-robin
    /// so throttling thins rather than truncates streams.
    fn throttle(&mut self, out: &mut Vec<LineAddr>) {
        let keep_of = self.cfg.levels;
        let keep = self.level + 1;
        let candidates = std::mem::take(&mut self.scratch);
        for &line in &candidates {
            self.stats.produced += 1;
            self.round_robin = (self.round_robin + 1) % keep_of;
            if self.round_robin < keep {
                self.stats.issued += 1;
                self.epoch_issued += 1;
                self.remember(line);
                out.push(line);
            }
        }
        self.scratch = candidates;
        self.scratch.clear();
    }
}

impl<P: Prefetcher + Describe> Describe for FeedbackDirected<P> {
    fn describe(&self) -> ComponentDescription {
        let inner = self.inner.describe();
        let c = &self.cfg;
        let mut d = ComponentDescription::new(
            format!("FDP({})", inner.name),
            ComponentKind::Prefetcher,
            format!(
                "Feedback-Directed Prefetching (Srinath et al., HPCA 2007) as a \
                 throttling wrapper around {}: measures the wrapped engine's \
                 recent accuracy over fixed epochs and throttles the candidates \
                 passed through when accuracy is poor. The contrast with CBWS, \
                 which gets its accuracy statically from compiler hints, is the \
                 point of the extension.",
                inner.name
            ),
        )
        .paper_section("§III-A / Fig. 13 taxonomy (related work)")
        .extension()
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "epoch_accesses",
            "demand accesses per evaluation epoch",
            c.epoch_accesses.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "window",
            "recent emissions remembered for usefulness matching",
            c.window.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "low_accuracy_pct",
            "accuracy below which aggressiveness decreases",
            c.low_accuracy_pct.to_string(),
            "0-100",
        ))
        .param(ParamSpec::new(
            "high_accuracy_pct",
            "accuracy above which aggressiveness increases",
            c.high_accuracy_pct.to_string(),
            "0-100",
        ))
        .param(ParamSpec::new(
            "levels",
            "throttle levels; level i passes i+1 of every `levels` candidates",
            c.levels.to_string(),
            "≥ 1",
        ));
        for p in inner.params {
            d = d.param(ParamSpec::new(
                format!("{}.{}", inner.name.to_ascii_lowercase(), p.name),
                p.doc,
                p.default,
                p.range,
            ));
        }
        d.metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl<P: Prefetcher> Prefetcher for FeedbackDirected<P> {
    fn name(&self) -> &'static str {
        "FDP"
    }

    fn storage_bits(&self) -> u64 {
        // Inner engine + the usefulness window (32-bit line tags) + a few
        // counters.
        self.inner.storage_bits() + self.cfg.window as u64 * 32 + 64
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        // Usefulness feedback: a demand touching a recently issued line.
        let line = ctx.addr.line();
        if let Some(pos) = self.recent.iter().position(|&l| l == line) {
            self.recent.remove(pos);
            self.stats.useful += 1;
            self.epoch_useful += 1;
        }
        self.epoch_accesses += 1;
        if self.epoch_accesses >= self.cfg.epoch_accesses {
            self.epoch_boundary();
        }

        self.scratch.clear();
        self.inner.on_access(ctx, &mut self.scratch);
        self.throttle(out);
    }

    fn on_block_begin(&mut self, id: BlockId) {
        self.inner.on_block_begin(id);
    }

    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        self.scratch.clear();
        self.inner.on_block_end(id, &mut self.scratch);
        self.throttle(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SmsConfig, SmsPrefetcher, StridePrefetcher};
    use cbws_trace::{Addr, Pc};

    /// A test engine that emits one fixed junk line per access.
    #[derive(Debug, Default)]
    struct Sprayer {
        next: u64,
    }

    impl Prefetcher for Sprayer {
        fn name(&self) -> &'static str {
            "sprayer"
        }

        fn storage_bits(&self) -> u64 {
            0
        }

        fn on_access(&mut self, _ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
            self.next += 1;
            out.push(LineAddr(1 << 40 | self.next)); // never demanded
        }
    }

    fn miss(line: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(0x40), Addr(line * 64))
    }

    #[test]
    fn useless_engine_gets_throttled_down() {
        let cfg = FdpConfig {
            epoch_accesses: 64,
            ..FdpConfig::default()
        };
        let mut fdp = FeedbackDirected::with_config(Sprayer::default(), cfg);
        let mut out = Vec::new();
        for i in 0..1000u64 {
            out.clear();
            fdp.on_access(&miss(i), &mut out);
        }
        assert_eq!(
            fdp.level(),
            0,
            "useless prefetches must throttle to minimum"
        );
        assert!(fdp.stats().throttled_down >= 3);
        assert!(fdp.stats().issued < fdp.stats().produced);
    }

    #[test]
    fn accurate_engine_stays_aggressive() {
        // Stride on a clean stream: its predictions are demanded shortly
        // after, so accuracy stays high and the level stays at max.
        let mut fdp = FeedbackDirected::new(StridePrefetcher::default());
        let mut out = Vec::new();
        for i in 0..3000u64 {
            out.clear();
            fdp.on_access(&miss(i * 2), &mut out);
        }
        assert_eq!(fdp.level(), FdpConfig::default().levels - 1);
        assert_eq!(fdp.stats().throttled_down, 0);
        assert!(fdp.stats().useful > 0);
    }

    #[test]
    fn recovery_after_phase_change() {
        let cfg = FdpConfig {
            epoch_accesses: 64,
            ..FdpConfig::default()
        };
        let mut fdp = FeedbackDirected::with_config(StridePrefetcher::default(), cfg);
        let mut out = Vec::new();
        // Phase 1: random — stride emits nothing, junk phase via sprayed
        // randomness is absent, so level drifts up/down only on evidence.
        let mut x = 1u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            fdp.on_access(&miss(x >> 40), &mut out);
        }
        // Phase 2: clean stream — must recover to aggressive and prefetch.
        for i in 0..2000u64 {
            out.clear();
            fdp.on_access(&miss(1 << 30 | (i * 2)), &mut out);
        }
        assert_eq!(fdp.level(), cfg.levels - 1);
        assert!(!out.is_empty() || fdp.stats().issued > 0);
    }

    #[test]
    fn block_hooks_forwarded() {
        let mut fdp = FeedbackDirected::new(SmsPrefetcher::new(SmsConfig::default()));
        let mut out = Vec::new();
        fdp.on_block_begin(BlockId(1));
        fdp.on_block_end(BlockId(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_includes_window() {
        let fdp = FeedbackDirected::new(StridePrefetcher::default());
        assert!(fdp.storage_bits() > StridePrefetcher::default().storage_bits());
    }
}
