//! PC-indexed stride prefetcher (Fu/Patel/Janssens 1992; Jouppi 1990).
//!
//! The paper configures it with an unrealistically large 256-entry
//! fully-associative table "to demonstrate the benefits of CBWS over a
//! stride prefetcher" (§VII), for a 2.25 KB budget (Table III: each entry
//! holds a 48-bit PC tag plus two 12-bit strides).

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::{LineAddr, Pc};

/// Stride-prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Fully-associative table entries (paper: 256).
    pub entries: usize,
    /// Strides prefetched per confirmed access.
    pub degree: u32,
    /// Additional lead, in strides, between the demand stream and the first
    /// prefetched address (a "distance" knob; the paper's conservative
    /// static configuration has none).
    pub distance: u32,
    /// Consecutive identical strides required before prefetching.
    pub confirm_threshold: u8,
    /// Train on all L2 demand accesses instead of misses only. The paper's
    /// §II argument is exactly that static prefetchers must stay
    /// conservative (miss-trained) to avoid pollution outside loops, which
    /// is what CBWS's compiler hints relax.
    pub train_on_hits: bool,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            entries: 256,
            degree: 2,
            distance: 0,
            confirm_threshold: 2,
            train_on_hits: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    pc: Pc,
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// The PC-indexed stride prefetcher. Trains on demand accesses that reach
/// the L2 (L1 misses), the stream an L2-side prefetcher observes.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<StrideEntry>,
    stamp: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries` is zero.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.entries > 0, "stride table needs at least one entry");
        StridePrefetcher {
            cfg,
            table: Vec::with_capacity(cfg.entries),
            stamp: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StrideConfig {
        &self.cfg
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        StridePrefetcher::new(StrideConfig::default())
    }
}

impl Describe for StridePrefetcher {
    fn describe(&self) -> ComponentDescription {
        let c = &self.cfg;
        ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "PC-indexed stride prefetcher (Fu/Patel/Janssens 1992; Jouppi 1990): \
             a fully-associative table of per-PC last-line/stride pairs that \
             prefetches `degree` strides ahead once a stride repeats \
             `confirm_threshold` times. The paper sizes it at an \
             unrealistically large 256 entries to strengthen the baseline.",
        )
        .paper_section("§VII, Tables II-III (baseline)")
        .storage_bits(self.storage_bits())
        .param(ParamSpec::new(
            "entries",
            "fully-associative table entries (paper: 256)",
            c.entries.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "degree",
            "strides prefetched per confirmed access",
            c.degree.to_string(),
            "≥ 0",
        ))
        .param(ParamSpec::new(
            "distance",
            "additional lead, in strides, ahead of the demand stream \
             (the paper's conservative static configuration has none)",
            c.distance.to_string(),
            "≥ 0",
        ))
        .param(ParamSpec::new(
            "confirm_threshold",
            "consecutive identical strides required before prefetching",
            c.confirm_threshold.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "train_on_hits",
            "train on all L2 demand accesses instead of misses only \
             (§II: static prefetchers stay miss-trained to avoid pollution)",
            c.train_on_hits.to_string(),
            "bool",
        ))
        .metrics(cbws_describe::instrumented_prefetcher_metrics())
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "Stride"
    }

    fn storage_bits(&self) -> u64 {
        // Table III: (PC + 2 x stride) x entries = (48 + 2*12) * 256.
        (48 + 2 * 12) * self.cfg.entries as u64
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        let trains = if self.cfg.train_on_hits {
            ctx.reached_l2()
        } else {
            ctx.llc_miss()
        };
        if !trains {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let line = ctx.addr.line();

        if let Some(e) = self.table.iter_mut().find(|e| e.pc == ctx.pc) {
            e.lru = stamp;
            let stride = line.delta(e.last_line);
            if stride == 0 {
                return; // same line; no training signal
            }
            if stride == e.stride {
                e.confidence = e.confidence.saturating_add(1);
            } else {
                e.stride = stride;
                e.confidence = 1;
            }
            e.last_line = line;
            if e.confidence >= self.cfg.confirm_threshold {
                let lead = i64::from(self.cfg.distance);
                for k in 1..=i64::from(self.cfg.degree) {
                    out.push(line.offset(e.stride * (lead + k)));
                }
            }
            return;
        }

        // Allocate (LRU victim if full).
        let entry = StrideEntry {
            pc: ctx.pc,
            last_line: line,
            stride: 0,
            confidence: 0,
            lru: stamp,
        };
        if self.table.len() < self.cfg.entries {
            self.table.push(entry);
        } else if let Some(v) = self.table.iter_mut().min_by_key(|e| e.lru) {
            *v = entry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_trace::Addr;

    fn miss(pc: u64, addr: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(pc), Addr(addr))
    }

    #[test]
    fn confirmed_stride_prefetches_degree_lines() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        for i in 0..3u64 {
            out.clear();
            pf.on_access(&miss(0x40, i * 128), &mut out);
        }
        // Stride = 2 lines, confirmed on 3rd access (line 4); degree 2 at
        // distance 0: strides 1..=2 ahead.
        assert_eq!(out, vec![LineAddr(6), LineAddr(8)]);
    }

    #[test]
    fn unconfirmed_stride_is_silent() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        pf.on_access(&miss(0x40, 0), &mut out);
        pf.on_access(&miss(0x40, 128), &mut out);
        assert!(out.is_empty(), "stride not yet confirmed");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        for addr in [0u64, 128, 256, 384] {
            pf.on_access(&miss(0x40, addr), &mut out);
        }
        out.clear();
        pf.on_access(&miss(0x40, 384 + 320), &mut out); // new stride (5 lines)
        assert!(out.is_empty());
        pf.on_access(&miss(0x40, 384 + 640), &mut out); // confirm once
        assert!(!out.is_empty());
    }

    #[test]
    fn negative_strides_supported() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        for i in (0..4u64).rev() {
            out.clear();
            pf.on_access(&miss(0x80, 4096 + i * 64), &mut out);
        }
        // Last access at line 64, stride -1: first candidate 63.
        assert_eq!(out[0], LineAddr(63));
    }

    #[test]
    fn per_pc_streams_are_independent() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        // Interleave two PCs with different strides; both should confirm.
        for i in 0..3u64 {
            out.clear();
            pf.on_access(&miss(0x40, i * 64), &mut out);
            pf.on_access(&miss(0x44, 1 << 20 | (i * 256)), &mut out);
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn l1_hits_do_not_train() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        for i in 0..5u64 {
            let mut c = miss(0x40, i * 128);
            c.l1_hit = true;
            pf.on_access(&c, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn table_capacity_lru_eviction() {
        let mut pf = StridePrefetcher::new(StrideConfig {
            entries: 2,
            ..Default::default()
        });
        let mut out = Vec::new();
        // Train pc=1, then fill with pc=2, pc=3 evicting pc=1.
        for i in 0..3u64 {
            pf.on_access(&miss(1, i * 64), &mut out);
        }
        pf.on_access(&miss(2, 0x100000), &mut out);
        pf.on_access(&miss(3, 0x200000), &mut out);
        out.clear();
        // pc=1 must re-train from scratch: first re-access yields nothing.
        pf.on_access(&miss(1, 0x300000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_matches_table3() {
        let pf = StridePrefetcher::default();
        // 18.4 Kbit ~= 2.25 KB.
        assert_eq!(pf.storage_bits(), 18432);
    }

    #[test]
    fn same_line_repeat_does_not_poison_stride() {
        let mut pf = StridePrefetcher::default();
        let mut out = Vec::new();
        for addr in [0u64, 128, 128 + 8, 256, 384] {
            out.clear();
            pf.on_access(&miss(0x40, addr), &mut out);
        }
        assert!(
            !out.is_empty(),
            "zero-delta repeat should not reset the stream"
        );
    }
}
