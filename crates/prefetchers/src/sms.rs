//! Spatial Memory Streaming (Somogyi et al., ISCA 2006), as configured by
//! the paper: 32-entry accumulation (AGT) table, 32-entry filter table,
//! 512-entry pattern history table (PHT), 2 KB regions.
//!
//! Pattern bits are tracked at 128-byte granularity (16 granules of 2 lines
//! per 2 KB region), which is what makes Table III's 16-bit pattern field
//! consistent with the 2 KB region size.
//!
//! Lifecycle: the first access to an untracked region is its *trigger*; it
//! consults the PHT (keyed by trigger PC + in-region offset) and, on a hit,
//! streams the recorded spatial pattern into the L2. The region then sits in
//! the filter table until a second distinct granule is touched, at which
//! point it becomes an active *generation* in the AGT accumulating its
//! spatial pattern. A generation ends when its AGT entry is evicted (LRU),
//! storing the accumulated pattern into the PHT. In the original hardware a
//! generation also ends on eviction of its lines from the cache; LRU
//! eviction from a 32-entry AGT approximates that lifetime.

use crate::{PrefetchContext, Prefetcher};
use cbws_describe::{ComponentDescription, ComponentKind, Describe, ParamSpec};
use cbws_trace::{Addr, LineAddr, Pc};

/// SMS parameters (Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmsConfig {
    /// Spatial region size in bytes (power of two).
    pub region_bytes: u64,
    /// Pattern granule size in bytes (power of two, ≥ line size).
    pub granule_bytes: u64,
    /// Active-generation table entries.
    pub agt_entries: usize,
    /// Filter-table entries.
    pub filter_entries: usize,
    /// Pattern-history-table entries.
    pub pht_entries: usize,
    /// A generation also ends after this many trained accesses without a
    /// touch. The original hardware ends a generation when the region's
    /// lines are evicted from the cache; an idle window is the trace-level
    /// proxy for that lifetime.
    pub idle_window: u64,
}

impl Default for SmsConfig {
    fn default() -> Self {
        SmsConfig {
            region_bytes: 2048,
            granule_bytes: 128,
            agt_entries: 32,
            filter_entries: 32,
            pht_entries: 512,
            idle_window: 256,
        }
    }
}

impl SmsConfig {
    /// Granules per region (pattern width in bits).
    pub fn granules(&self) -> u32 {
        (self.region_bytes / self.granule_bytes) as u32
    }

    /// Lines per granule.
    pub fn granule_lines(&self) -> u64 {
        self.granule_bytes / cbws_trace::LINE_BYTES
    }

    /// Bits to encode an in-region *line* offset (Table III stores 5-bit
    /// offsets for 2 KB regions of 32 lines).
    pub fn offset_bits(&self) -> u32 {
        ((self.region_bytes / cbws_trace::LINE_BYTES) as u32)
            .next_power_of_two()
            .trailing_zeros()
    }
}

#[derive(Debug, Clone, Copy)]
struct Generation {
    region: u64,
    trigger_pc: Pc,
    trigger_offset: u32,
    pattern: u32,
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct FilterEntry {
    region: u64,
    trigger_pc: Pc,
    trigger_offset: u32,
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct PhtEntry {
    key: u64,
    pattern: u32,
    lru: u64,
}

/// The SMS prefetcher. Observes demand accesses that reach the L2.
#[derive(Debug, Clone)]
pub struct SmsPrefetcher {
    cfg: SmsConfig,
    agt: Vec<Generation>,
    filter: Vec<FilterEntry>,
    pht: Vec<PhtEntry>,
    stamp: u64,
}

impl SmsPrefetcher {
    /// Creates an SMS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero-entry tables, granule
    /// smaller than a line, or non-power-of-two sizes).
    pub fn new(cfg: SmsConfig) -> Self {
        assert!(
            cfg.region_bytes.is_power_of_two(),
            "region size must be a power of two"
        );
        assert!(
            cfg.granule_bytes.is_power_of_two(),
            "granule size must be a power of two"
        );
        assert!(
            cfg.granule_bytes >= cbws_trace::LINE_BYTES,
            "granule smaller than a line"
        );
        assert!(
            cfg.region_bytes >= cfg.granule_bytes,
            "region smaller than a granule"
        );
        assert!(
            cfg.granules() <= 32,
            "pattern wider than 32 bits is unsupported"
        );
        assert!(
            cfg.agt_entries > 0 && cfg.filter_entries > 0 && cfg.pht_entries > 0,
            "tables need at least one entry"
        );
        SmsPrefetcher {
            cfg,
            agt: Vec::new(),
            filter: Vec::new(),
            pht: Vec::new(),
            stamp: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SmsConfig {
        &self.cfg
    }

    fn region_of(&self, addr: Addr) -> u64 {
        addr.0 / self.cfg.region_bytes
    }

    fn offset_of(&self, addr: Addr) -> u32 {
        ((addr.0 % self.cfg.region_bytes) / self.cfg.granule_bytes) as u32
    }

    fn pht_key(pc: Pc, offset: u32) -> u64 {
        (pc.0 << 6) ^ u64::from(offset)
    }

    fn pht_store(&mut self, key: u64, pattern: u32) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self.pht.iter_mut().find(|e| e.key == key) {
            e.pattern = pattern;
            e.lru = stamp;
            return;
        }
        let entry = PhtEntry {
            key,
            pattern,
            lru: stamp,
        };
        if self.pht.len() < self.cfg.pht_entries {
            self.pht.push(entry);
        } else if let Some(v) = self.pht.iter_mut().min_by_key(|e| e.lru) {
            *v = entry;
        }
    }

    fn pht_lookup(&self, key: u64) -> Option<u32> {
        self.pht.iter().find(|e| e.key == key).map(|e| e.pattern)
    }

    /// Ends a generation, recording its pattern (only patterns with at least
    /// two granules carry spatial information worth storing).
    fn end_generation(&mut self, g: Generation) {
        if g.pattern.count_ones() >= 2 {
            self.pht_store(Self::pht_key(g.trigger_pc, g.trigger_offset), g.pattern);
        }
    }

    /// Emits prefetches for every granule in `pattern` except the trigger's.
    fn stream_pattern(
        &self,
        region: u64,
        trigger_offset: u32,
        pattern: u32,
        out: &mut Vec<LineAddr>,
    ) {
        let region_base_line = region * self.cfg.region_bytes / cbws_trace::LINE_BYTES;
        let gl = self.cfg.granule_lines();
        for g in 0..self.cfg.granules() {
            if g == trigger_offset || pattern & (1 << g) == 0 {
                continue;
            }
            for l in 0..gl {
                out.push(LineAddr(region_base_line + u64::from(g) * gl + l));
            }
        }
    }
}

impl Default for SmsPrefetcher {
    fn default() -> Self {
        SmsPrefetcher::new(SmsConfig::default())
    }
}

/// The SMS parameter list, shared with the CBWS+SMS hybrid's description
/// (which embeds an SMS engine with the same knobs).
pub(crate) fn sms_params(c: &SmsConfig) -> Vec<ParamSpec> {
    vec![
        ParamSpec::new(
            "region_bytes",
            "spatial region size (paper: 2 KB)",
            c.region_bytes.to_string(),
            "power of two",
        ),
        ParamSpec::new(
            "granule_bytes",
            "pattern granule size; 128 B granularity is what makes Table III's \
             16-bit pattern field consistent with 2 KB regions",
            c.granule_bytes.to_string(),
            "power of two ≥ line size",
        ),
        ParamSpec::new(
            "agt_entries",
            "active generation table entries (paper: 32)",
            c.agt_entries.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "filter_entries",
            "filter table entries (paper: 32)",
            c.filter_entries.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "pht_entries",
            "pattern history table entries (paper: 512)",
            c.pht_entries.to_string(),
            "≥ 1",
        ),
        ParamSpec::new(
            "idle_window",
            "a generation also ends after this many trained accesses without \
             a touch (trace-level proxy for cache-eviction generation end)",
            c.idle_window.to_string(),
            "≥ 1",
        ),
    ]
}

impl Describe for SmsPrefetcher {
    fn describe(&self) -> ComponentDescription {
        let mut d = ComponentDescription::new(
            Prefetcher::name(self),
            ComponentKind::Prefetcher,
            "Spatial Memory Streaming (Somogyi et al., ISCA 2006): learns the \
             spatial footprint each trigger access's region exhibits across a \
             generation, and streams the recorded pattern into the L2 when the \
             same trigger recurs. The paper's strongest baseline and the \
             fallback engine of the CBWS+SMS hybrid.",
        )
        .paper_section("§VII, Tables II-III (baseline)")
        .storage_bits(self.storage_bits())
        .metrics(cbws_describe::instrumented_prefetcher_metrics());
        for p in sms_params(&self.cfg) {
            d = d.param(p);
        }
        d
    }
}

impl Prefetcher for SmsPrefetcher {
    fn name(&self) -> &'static str {
        "SMS"
    }

    fn storage_bits(&self) -> u64 {
        // Table III accounting: offset 5b, PC 48b, region tag 36b,
        // pattern = granule-count bits.
        let offset = u64::from(self.cfg.offset_bits());
        let pc = 48;
        let tag = 36;
        let pattern = u64::from(self.cfg.granules());
        (offset + pc + tag) * self.cfg.filter_entries as u64
            + (offset + pc + tag + pattern) * self.cfg.agt_entries as u64
            + (pattern + pc + offset) * self.cfg.pht_entries as u64
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        if !ctx.reached_l2() {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let region = self.region_of(ctx.addr);
        let offset = self.offset_of(ctx.addr);

        // Retire generations idle for longer than the window (the proxy for
        // the region's lines having been evicted).
        let idle = self.cfg.idle_window;
        let mut i = 0;
        while i < self.agt.len() {
            if stamp.saturating_sub(self.agt[i].lru) > idle {
                let g = self.agt.swap_remove(i);
                self.end_generation(g);
            } else {
                i += 1;
            }
        }

        // Active generation: accumulate.
        if let Some(g) = self.agt.iter_mut().find(|g| g.region == region) {
            g.pattern |= 1 << offset;
            g.lru = stamp;
            return;
        }

        // Filtered region: second access promotes to a generation.
        if let Some(pos) = self.filter.iter().position(|f| f.region == region) {
            let f = self.filter[pos];
            if f.trigger_offset == offset {
                // Same granule again: stay in the filter.
                self.filter[pos].lru = stamp;
                return;
            }
            self.filter.remove(pos);
            let gen = Generation {
                region,
                trigger_pc: f.trigger_pc,
                trigger_offset: f.trigger_offset,
                pattern: (1 << f.trigger_offset) | (1 << offset),
                lru: stamp,
            };
            if self.agt.len() >= self.cfg.agt_entries {
                let victim_idx = self
                    .agt
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, g)| g.lru)
                    .map(|(i, _)| i)
                    .expect("agt non-empty");
                let victim = self.agt.swap_remove(victim_idx);
                self.end_generation(victim);
            }
            self.agt.push(gen);
            return;
        }

        // Trigger access: predict from the PHT, then start filtering.
        if let Some(pattern) = self.pht_lookup(Self::pht_key(ctx.pc, offset)) {
            self.stream_pattern(region, offset, pattern, out);
        }
        let entry = FilterEntry {
            region,
            trigger_pc: ctx.pc,
            trigger_offset: offset,
            lru: stamp,
        };
        if self.filter.len() < self.cfg.filter_entries {
            self.filter.push(entry);
        } else if let Some(v) = self.filter.iter_mut().min_by_key(|f| f.lru) {
            *v = entry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(pc: u64, addr: u64) -> PrefetchContext {
        PrefetchContext::demand_miss(Pc(pc), Addr(addr))
    }

    /// Touches granules `offsets` of `region` with trigger PC `pc`.
    fn touch_region(
        pf: &mut SmsPrefetcher,
        pc: u64,
        region: u64,
        offsets: &[u64],
    ) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for (i, &o) in offsets.iter().enumerate() {
            let addr = region * 2048 + o * 128;
            let mut v = Vec::new();
            pf.on_access(&miss(pc, addr), &mut v);
            if i == 0 {
                out = v;
            }
        }
        out
    }

    /// Forces all AGT generations out by touching many fresh regions twice.
    fn flush_agt(pf: &mut SmsPrefetcher, base_region: u64) {
        for r in 0..33u64 {
            touch_region(pf, 0x9999, base_region + r, &[0, 1]);
        }
    }

    #[test]
    fn learned_pattern_streams_on_retrigger() {
        let mut pf = SmsPrefetcher::default();
        // Generation in region 10 touching granules 0, 3, 5.
        touch_region(&mut pf, 0x40, 10, &[0, 3, 5]);
        flush_agt(&mut pf, 1000);
        // Re-trigger with the same PC+offset in a new region.
        let out = touch_region(&mut pf, 0x40, 20, &[0]);
        // Expect granules 3 and 5 prefetched: lines (region base 20*32) + {6,7,10,11}.
        let base = 20 * 32;
        let mut lines: Vec<u64> = out.iter().map(|l| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![base + 6, base + 7, base + 10, base + 11]);
    }

    #[test]
    fn trigger_without_history_is_silent() {
        let mut pf = SmsPrefetcher::default();
        let out = touch_region(&mut pf, 0x40, 10, &[0]);
        assert!(out.is_empty());
    }

    #[test]
    fn pattern_is_keyed_by_pc_and_offset() {
        let mut pf = SmsPrefetcher::default();
        touch_region(&mut pf, 0x40, 10, &[0, 3, 5]);
        flush_agt(&mut pf, 1000);
        // Different PC: no prediction.
        let out = touch_region(&mut pf, 0x44, 20, &[0]);
        assert!(out.is_empty());
        // Different offset: no prediction either.
        let out = touch_region(&mut pf, 0x40, 30, &[1]);
        assert!(out.is_empty());
    }

    #[test]
    fn single_granule_generations_not_stored() {
        let mut pf = SmsPrefetcher::default();
        // Region touched in only one granule never leaves the filter, so no
        // pattern is learned.
        touch_region(&mut pf, 0x40, 10, &[2, 2, 2]);
        flush_agt(&mut pf, 1000);
        let out = touch_region(&mut pf, 0x40, 20, &[2]);
        assert!(out.is_empty());
    }

    #[test]
    fn region_size_limits_tracking() {
        let mut pf = SmsPrefetcher::default();
        // Accesses 4 KB apart are different regions: each is its own trigger.
        let mut out = Vec::new();
        pf.on_access(&miss(0x40, 0), &mut out);
        pf.on_access(&miss(0x40, 4096), &mut out);
        pf.on_access(&miss(0x40, 8192), &mut out);
        assert!(out.is_empty());
        assert_eq!(pf.filter.len(), 3);
    }

    #[test]
    fn l1_hits_ignored() {
        let mut pf = SmsPrefetcher::default();
        let mut out = Vec::new();
        let mut c = miss(0x40, 0);
        c.l1_hit = true;
        pf.on_access(&c, &mut out);
        assert!(pf.filter.is_empty() && pf.agt.is_empty());
    }

    #[test]
    fn storage_matches_table3() {
        let pf = SmsPrefetcher::default();
        // Table III: 2848 + 3360 + 35328 = 41536 bits ~= 5KB.
        // (filter has no pattern; AGT does — the formulas in the paper label
        // them the other way round, but the arithmetic matches.)
        assert_eq!(pf.storage_bits(), 2848 + 3360 + 35328);
    }

    #[test]
    fn tables_bounded() {
        let mut pf = SmsPrefetcher::default();
        for r in 0..1000u64 {
            touch_region(&mut pf, r % 7, r, &[0, 1, 2]);
        }
        assert!(pf.agt.len() <= 32);
        assert!(pf.filter.len() <= 32);
        assert!(pf.pht.len() <= 512);
    }

    #[test]
    fn dense_pattern_covers_whole_region() {
        let mut pf = SmsPrefetcher::default();
        let all: Vec<u64> = (0..16).collect();
        touch_region(&mut pf, 0x40, 10, &all);
        flush_agt(&mut pf, 1000);
        let out = touch_region(&mut pf, 0x40, 50, &[0]);
        // 15 granules x 2 lines (trigger granule skipped).
        assert_eq!(out.len(), 30);
    }
}
