//! A transparent wrapper counting prefetcher activity into a telemetry
//! registry.

use crate::{PrefetchContext, Prefetcher};
use cbws_telemetry::Telemetry;
use cbws_trace::{BlockId, LineAddr};

/// Wraps any [`Prefetcher`], counting its activity under the
/// `prefetcher.*` metric namespace while forwarding every call unchanged:
///
/// * `prefetcher.accesses` — observed demand accesses,
/// * `prefetcher.candidates` — candidate lines emitted (all hooks),
/// * `prefetcher.block_begins` / `prefetcher.block_ends` — block markers.
///
/// The wrapper is observationally transparent: the inner prefetcher sees
/// the exact same call sequence and the caller the exact same candidates,
/// whether telemetry is enabled or not.
#[derive(Debug, Clone)]
pub struct InstrumentedPrefetcher<P> {
    inner: P,
    telemetry: Telemetry,
}

impl<P: Prefetcher> InstrumentedPrefetcher<P> {
    /// Wraps `inner`, counting into `telemetry`.
    pub fn new(inner: P, telemetry: Telemetry) -> Self {
        InstrumentedPrefetcher { inner, telemetry }
    }

    /// The wrapped prefetcher.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner prefetcher.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Prefetcher> Prefetcher for InstrumentedPrefetcher<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn on_access(&mut self, ctx: &PrefetchContext, out: &mut Vec<LineAddr>) {
        let before = out.len();
        self.inner.on_access(ctx, out);
        self.telemetry.count("prefetcher.accesses", 1);
        let emitted = (out.len() - before) as u64;
        if emitted > 0 {
            self.telemetry.count("prefetcher.candidates", emitted);
        }
    }

    fn on_block_begin(&mut self, id: BlockId) {
        self.inner.on_block_begin(id);
        self.telemetry.count("prefetcher.block_begins", 1);
    }

    fn on_block_end(&mut self, id: BlockId, out: &mut Vec<LineAddr>) {
        let before = out.len();
        self.inner.on_block_end(id, out);
        self.telemetry.count("prefetcher.block_ends", 1);
        let emitted = (out.len() - before) as u64;
        if emitted > 0 {
            self.telemetry.count("prefetcher.candidates", emitted);
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StridePrefetcher;
    use cbws_trace::{Addr, Pc};

    fn drive<P: Prefetcher>(pf: &mut P) -> Vec<LineAddr> {
        let mut out = Vec::new();
        pf.on_block_begin(BlockId(1));
        for i in 0..16u64 {
            let ctx = PrefetchContext::demand_miss(Pc(0x40), Addr(i * 256));
            pf.on_access(&ctx, &mut out);
        }
        pf.on_block_end(BlockId(1), &mut out);
        out
    }

    #[test]
    fn wrapper_is_observationally_transparent() {
        let mut plain = StridePrefetcher::default();
        let expected = drive(&mut plain);

        for telemetry in [Telemetry::disabled(), Telemetry::enabled(64)] {
            let mut wrapped = InstrumentedPrefetcher::new(StridePrefetcher::default(), telemetry);
            assert_eq!(drive(&mut wrapped), expected);
            assert_eq!(wrapped.name(), plain.name());
            assert_eq!(wrapped.storage_bits(), plain.storage_bits());
        }
    }

    #[test]
    fn wrapper_counts_activity() {
        let t = Telemetry::enabled(64);
        let mut wrapped = InstrumentedPrefetcher::new(StridePrefetcher::default(), t.clone());
        let emitted = drive(&mut wrapped);
        let counter = |path: &str| t.with_metrics(|m| m.counter(path)).unwrap().unwrap_or(0);
        assert_eq!(counter("prefetcher.accesses"), 16);
        assert_eq!(counter("prefetcher.block_begins"), 1);
        assert_eq!(counter("prefetcher.block_ends"), 1);
        assert_eq!(counter("prefetcher.candidates"), emitted.len() as u64);
        assert!(!emitted.is_empty());
    }
}
