//! Fixed-capacity event ring buffer.

use crate::event::SimEvent;

/// A bounded ring of [`SimEvent`]s.
///
/// Pushing beyond capacity overwrites the oldest event and bumps a dropped
/// counter, so a long simulation keeps the *most recent* window of activity
/// at a fixed memory cost. Iteration yields events oldest-first.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<SimEvent>,
    cap: usize,
    /// Index of the oldest event once the buffer is full.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, event: SimEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &SimEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Snapshots the events oldest-first.
    pub fn to_vec(&self) -> Vec<SimEvent> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> SimEvent {
        SimEvent::PrefetchIssued {
            cycle,
            line: cycle * 10,
        }
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = EventRing::new(8);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(SimEvent::cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_keeps_newest_window() {
        let mut r = EventRing::new(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.iter().map(SimEvent::cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest-first, most recent window");
    }

    #[test]
    fn wraparound_at_exact_multiples() {
        let mut r = EventRing::new(3);
        for c in 0..6 {
            r.push(ev(c));
        }
        let cycles: Vec<u64> = r.to_vec().iter().map(SimEvent::cycle).collect();
        assert_eq!(cycles, vec![3, 4, 5]);
        r.push(ev(6));
        let cycles: Vec<u64> = r.to_vec().iter().map(SimEvent::cycle).collect();
        assert_eq!(cycles, vec![4, 5, 6]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_vec()[0].cycle(), 2);
    }
}
