//! Nested, thread-tagged wall-clock spans with Chrome trace-event export.
//!
//! A [`Spans`] collector mirrors the [`crate::Telemetry`] handle pattern:
//! disabled handles carry no allocation and make every call a single branch
//! on a `None`, enabled handles share one record table behind a mutex. Each
//! span lives on a **lane** (one per worker thread, registered by name), is
//! tagged with its nesting depth on that lane, and carries `key=value`
//! attributes. Guards close their span on drop, so a span brackets a scope:
//!
//! ```
//! use cbws_telemetry::Spans;
//!
//! let spans = Spans::enabled();
//! let lane = spans.lane("worker-0");
//! spans.adopt_lane(lane);
//! {
//!     let job = spans.begin("job");
//!     job.attr("workload", "stencil-default");
//!     let _inner = spans.begin("simulate"); // nests under `job`
//! } // both closed here
//! assert_eq!(spans.records().len(), 2);
//!
//! let off = Spans::disabled();
//! let _g = off.begin("ignored"); // no-op, no allocation
//! assert!(off.records().is_empty());
//! ```
//!
//! The whole collection exports as Chrome trace-event JSON
//! ([`Spans::to_chrome_trace`]) loadable in Perfetto or `chrome://tracing`,
//! one timeline row per lane.

use std::cell::Cell;
use std::fmt::Display;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One recorded span: a named interval on a lane.
///
/// Times are microseconds since the collector was created. `dur_us` is
/// `None` while the span is still open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. a workload/prefetcher pair, or `"generate"`).
    pub name: String,
    /// Index of the lane (thread timeline) the span belongs to.
    pub lane: usize,
    /// Nesting depth on the lane at begin time (0 = top level).
    pub depth: usize,
    /// Begin time, µs since the collector's epoch.
    pub start_us: u64,
    /// Duration in µs; `None` while the span is open.
    pub dur_us: Option<u64>,
    /// `key=value` attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

#[derive(Default)]
struct State {
    /// Lane names, index = lane id = Chrome `tid`.
    lanes: Vec<String>,
    /// Per-lane stack of open record indices (tracks nesting depth).
    open: Vec<Vec<usize>>,
    records: Vec<SpanRecord>,
}

struct Inner {
    /// Distinguishes collectors for the thread-local lane binding.
    id: u64,
    epoch: Instant,
    state: Mutex<State>,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    // Same policy as the Telemetry sink: a panic mid-span leaves no broken
    // invariants worth poisoning over.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(collector id, lane)` this thread last adopted. The id check keeps
    /// a binding from one collector from leaking into another (tests run
    /// many collectors on one thread).
    static CURRENT_LANE: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

/// A shared, cloneable span collector.
///
/// Disabled handles are free: [`Spans::begin`] returns an inert guard after
/// one branch. Enabled handles append to a shared record table; begin/end
/// each take the lock once, so the cost is two uncontended mutex ops plus
/// one `Instant` read per span — spans belong on job/phase boundaries, not
/// in per-event hot loops.
#[derive(Clone, Default)]
pub struct Spans {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Spans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Spans(disabled)"),
            Some(inner) => {
                let st = lock(&inner.state);
                write!(
                    f,
                    "Spans(lanes: {}, records: {})",
                    st.lanes.len(),
                    st.records.len()
                )
            }
        }
    }
}

impl Spans {
    /// A no-op collector: every call returns immediately.
    pub fn disabled() -> Self {
        Spans { inner: None }
    }

    /// An active collector with its epoch set to now.
    pub fn enabled() -> Self {
        Spans {
            inner: Some(Arc::new(Inner {
                id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or finds) a lane by name and returns its id. Lane ids
    /// are dense and double as the Chrome `tid`. Disabled handles return 0.
    pub fn lane(&self, name: &str) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        let mut st = lock(&inner.state);
        lane_of(&mut st, name)
    }

    /// Binds the calling thread to `lane`: subsequent [`Spans::begin`]
    /// calls from this thread land there.
    pub fn adopt_lane(&self, lane: usize) {
        let Some(inner) = &self.inner else { return };
        CURRENT_LANE.with(|c| c.set((inner.id, lane)));
    }

    /// The calling thread's current lane for this collector — the lane a
    /// [`Spans::begin`] would use right now — registering the
    /// thread-default lane if none was adopted. Lets a caller that adopts
    /// a different lane temporarily (the engine's single-worker fast path
    /// runs jobs on the caller thread under `worker-0`) restore the
    /// binding afterwards. Disabled handles return 0.
    pub fn current_lane(&self) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        current_lane(inner)
    }

    /// Opens a span on the calling thread's lane and returns a guard that
    /// closes it on drop. Threads that never called [`Spans::adopt_lane`]
    /// get a lane named after the OS thread.
    pub fn begin(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                inner: None,
                idx: 0,
            };
        };
        let lane = current_lane(inner);
        self.begin_on(lane, name)
    }

    /// Opens a span on an explicit lane (for work attributed to a timeline
    /// other than the calling thread's).
    pub fn begin_on(&self, lane: usize, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                inner: None,
                idx: 0,
            };
        };
        let idx = begin_raw(inner, lane, name);
        SpanGuard {
            inner: Some(inner.clone()),
            idx,
        }
    }

    /// Raw begin for collaborators that cannot hold a guard (the
    /// [`crate::Profiler`] stores the index across `begin`/`end` calls).
    /// Returns `None` when disabled. The span lands on the calling
    /// thread's lane.
    pub fn begin_raw(&self, name: &str) -> Option<usize> {
        let inner = self.inner.as_ref()?;
        let lane = current_lane(inner);
        Some(begin_raw(inner, lane, name))
    }

    /// Closes a span opened with [`Spans::begin_raw`]. Closing twice is a
    /// no-op (the first duration wins).
    pub fn end_raw(&self, idx: usize) {
        let Some(inner) = &self.inner else { return };
        end_at(inner, idx);
    }

    /// Snapshot of the recorded spans, in begin order. Open spans have
    /// `dur_us = None`.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.state).records.clone(),
        }
    }

    /// Snapshot of the lane names, index = lane id.
    pub fn lanes(&self) -> Vec<String> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.state).lanes.clone(),
        }
    }

    /// The collection as Chrome trace-event JSON (see [`chrome_trace`]).
    /// Disabled handles render an empty trace.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.lanes(), &self.records())
    }

    /// Writes [`Spans::to_chrome_trace`] to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_trace<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{}", self.to_chrome_trace())?;
        w.flush()
    }
}

/// Finds or creates the lane named `name`.
fn lane_of(st: &mut State, name: &str) -> usize {
    if let Some(i) = st.lanes.iter().position(|l| l == name) {
        return i;
    }
    st.lanes.push(name.to_string());
    st.open.push(Vec::new());
    st.lanes.len() - 1
}

/// The calling thread's lane for `inner`, auto-registering one named after
/// the OS thread when the thread never adopted a lane.
fn current_lane(inner: &Inner) -> usize {
    let (id, lane) = CURRENT_LANE.with(Cell::get);
    if id == inner.id {
        return lane;
    }
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
    let lane = lane_of(&mut lock(&inner.state), &name);
    CURRENT_LANE.with(|c| c.set((inner.id, lane)));
    lane
}

fn begin_raw(inner: &Inner, lane: usize, name: &str) -> usize {
    let start_us = inner.epoch.elapsed().as_micros() as u64;
    let mut st = lock(&inner.state);
    // A lane id from a foreign (cloned-then-dropped) collector is clamped.
    let lane = lane.min(st.lanes.len().saturating_sub(1));
    if st.lanes.is_empty() {
        st.lanes.push("main".to_string());
        st.open.push(Vec::new());
    }
    let depth = st.open[lane].len();
    let idx = st.records.len();
    st.records.push(SpanRecord {
        name: name.to_string(),
        lane,
        depth,
        start_us,
        dur_us: None,
        attrs: Vec::new(),
    });
    st.open[lane].push(idx);
    idx
}

fn end_at(inner: &Inner, idx: usize) {
    let end_us = inner.epoch.elapsed().as_micros() as u64;
    let mut st = lock(&inner.state);
    let Some(rec) = st.records.get_mut(idx) else {
        return;
    };
    if rec.dur_us.is_some() {
        return;
    }
    rec.dur_us = Some(end_us.saturating_sub(rec.start_us));
    let lane = rec.lane;
    // Guards normally close in LIFO order, but nothing enforces it;
    // remove the span wherever it sits on the open stack.
    if let Some(pos) = st.open[lane].iter().rposition(|&i| i == idx) {
        st.open[lane].remove(pos);
    }
}

/// A guard that closes its span when dropped. Obtained from
/// [`Spans::begin`]; inert when the collector is disabled.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    idx: usize,
}

impl SpanGuard {
    /// Attaches a `key=value` attribute to the span (chainable).
    pub fn attr(&self, key: &str, value: impl Display) -> &Self {
        if let Some(inner) = &self.inner {
            let mut st = lock(&inner.state);
            // Record indices are stable: the table only grows.
            st.records[self.idx]
                .attrs
                .push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            end_at(&inner, self.idx);
        }
    }
}

/// Renders lanes + records as Chrome trace-event JSON: one `"X"` (complete)
/// event per **closed** span with `ts`/`dur` in µs, `pid` 1, `tid` = lane,
/// and the attributes as `args`; plus `"M"` metadata events naming the
/// process and each lane. Open spans (`dur_us = None`) are omitted — export
/// after the work being traced has finished.
///
/// A pure function of its inputs, so the JSON shape is golden-testable.
pub fn chrome_trace(lanes: &[String], records: &[SpanRecord]) -> String {
    use serde::Value;
    let obj = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let mut events: Vec<Value> = Vec::new();
    events.push(obj(vec![
        ("ph", Value::Str("M".into())),
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(0)),
        ("name", Value::Str("process_name".into())),
        ("args", obj(vec![("name", Value::Str("cbws".into()))])),
    ]));
    for (tid, lane) in lanes.iter().enumerate() {
        events.push(obj(vec![
            ("ph", Value::Str("M".into())),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(tid as u64)),
            ("name", Value::Str("thread_name".into())),
            ("args", obj(vec![("name", Value::Str(lane.clone()))])),
        ]));
    }
    for r in records {
        let Some(dur) = r.dur_us else { continue };
        let args: Vec<(String, Value)> = r
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        events.push(obj(vec![
            ("ph", Value::Str("X".into())),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(r.lane as u64)),
            ("name", Value::Str(r.name.clone())),
            ("ts", Value::UInt(r.start_us)),
            ("dur", Value::UInt(dur)),
            ("args", Value::Object(args)),
        ]));
    }
    let root = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    serde_json::to_string(&root).expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let s = Spans::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.lane("worker-0"), 0);
        {
            let g = s.begin("job");
            g.attr("k", "v");
        }
        assert!(s.begin_raw("x").is_none());
        s.end_raw(0);
        assert!(s.records().is_empty());
        assert!(s.lanes().is_empty());
        let trace = s.to_chrome_trace();
        assert!(trace.contains("traceEvents"));
    }

    #[test]
    fn nesting_tracks_depth_per_lane() {
        let s = Spans::enabled();
        let lane = s.lane("worker-0");
        s.adopt_lane(lane);
        let outer = s.begin("outer");
        {
            let _mid = s.begin("mid");
            let _leaf = s.begin("leaf");
        }
        let _mid2 = s.begin("mid2");
        drop(_mid2);
        drop(outer);
        let rec = s.records();
        let depth: Vec<(String, usize)> = rec.iter().map(|r| (r.name.clone(), r.depth)).collect();
        assert_eq!(
            depth,
            vec![
                ("outer".into(), 0),
                ("mid".into(), 1),
                ("leaf".into(), 2),
                ("mid2".into(), 1),
            ]
        );
        assert!(rec.iter().all(|r| r.dur_us.is_some()), "all closed");
        assert!(rec.iter().all(|r| r.lane == lane));
    }

    #[test]
    fn threads_get_their_own_lanes() {
        let s = Spans::enabled();
        let main_lane = s.lane("main");
        s.adopt_lane(main_lane);
        let _g = s.begin("parent");
        std::thread::scope(|scope| {
            for i in 0..2 {
                let s = s.clone();
                scope.spawn(move || {
                    let lane = s.lane(&format!("worker-{i}"));
                    s.adopt_lane(lane);
                    let g = s.begin("job");
                    g.attr("worker", i);
                });
            }
        });
        drop(_g);
        assert_eq!(s.lanes(), vec!["main", "worker-0", "worker-1"]);
        let rec = s.records();
        assert_eq!(rec.len(), 3);
        let jobs: Vec<usize> = rec
            .iter()
            .filter(|r| r.name == "job")
            .map(|r| r.lane)
            .collect();
        assert_eq!(jobs.len(), 2);
        assert!(jobs.contains(&1) && jobs.contains(&2));
        // Each worker span sits at depth 0 of its own lane even though the
        // main lane had an open span.
        assert!(rec.iter().filter(|r| r.name == "job").all(|r| r.depth == 0));
    }

    #[test]
    fn unadopted_thread_is_named_after_the_os_thread() {
        let s = Spans::enabled();
        std::thread::Builder::new()
            .name("helper".into())
            .spawn({
                let s = s.clone();
                move || {
                    let _g = s.begin("work");
                }
            })
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(s.lanes(), vec!["helper"]);
    }

    #[test]
    fn attributes_round_trip() {
        let s = Spans::enabled();
        s.adopt_lane(s.lane("main"));
        {
            let g = s.begin("job");
            g.attr("workload", "stencil-default").attr("job", 7);
        }
        let rec = s.records();
        assert_eq!(
            rec[0].attrs,
            vec![
                ("workload".into(), "stencil-default".into()),
                ("job".into(), "7".into()),
            ]
        );
    }

    #[test]
    fn raw_begin_end_and_double_end() {
        let s = Spans::enabled();
        s.adopt_lane(s.lane("main"));
        let idx = s.begin_raw("phase").unwrap();
        s.end_raw(idx);
        let first = s.records()[0].dur_us;
        assert!(first.is_some());
        s.end_raw(idx); // no-op
        assert_eq!(s.records()[0].dur_us, first);
        s.end_raw(999); // out of range: ignored
    }

    #[test]
    fn open_spans_have_no_duration_and_are_not_exported() {
        let s = Spans::enabled();
        s.adopt_lane(s.lane("main"));
        let idx = s.begin_raw("open").unwrap();
        {
            let _closed = s.begin("closed");
        }
        let rec = s.records();
        assert_eq!(rec[0].dur_us, None);
        assert!(rec[1].dur_us.is_some());
        let trace = s.to_chrome_trace();
        assert!(!trace.contains("\"open\""));
        assert!(trace.contains("\"closed\""));
        s.end_raw(idx);
    }

    #[test]
    fn chrome_trace_golden_snapshot() {
        // A hand-built fixture: stable input, byte-stable output.
        let lanes = vec!["worker-0".to_string(), "worker-1".to_string()];
        let records = vec![
            SpanRecord {
                name: "nw/SMS".into(),
                lane: 0,
                depth: 0,
                start_us: 10,
                dur_us: Some(250),
                attrs: vec![
                    ("workload".into(), "nw".into()),
                    ("prefetcher".into(), "SMS".into()),
                ],
            },
            SpanRecord {
                name: "idle".into(),
                lane: 1,
                depth: 0,
                start_us: 0,
                dur_us: Some(12),
                attrs: vec![],
            },
            SpanRecord {
                name: "still-open".into(),
                lane: 1,
                depth: 0,
                start_us: 40,
                dur_us: None,
                attrs: vec![],
            },
        ];
        let got = chrome_trace(&lanes, &records);
        let want = concat!(
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cbws\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"worker-0\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"worker-1\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"nw/SMS\",\"ts\":10,\"dur\":250,",
            "\"args\":{\"workload\":\"nw\",\"prefetcher\":\"SMS\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"idle\",\"ts\":0,\"dur\":12,\"args\":{}}",
            "],\"displayTimeUnit\":\"ms\"}"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn clones_share_the_collector() {
        let s = Spans::enabled();
        s.adopt_lane(s.lane("main"));
        let t = s.clone();
        {
            let _a = s.begin("a");
            let _b = t.begin("b");
        }
        assert_eq!(s.records().len(), 2);
        assert_eq!(t.records().len(), 2);
    }
}
