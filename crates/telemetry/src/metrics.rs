//! Hierarchical metrics registry: counters, gauges, and log2 histograms
//! addressable by dotted path (`l2.prefetch.issued`).

use serde::Value;
use std::collections::BTreeMap;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value 0; bucket `i` (for `i >= 1`) holds values in
/// `[2^(i-1), 2^i - 1]`, i.e. values whose bit length is `i`. Percentiles
/// are reported as the upper bound of the bucket containing the requested
/// rank, so they overestimate by at most 2x — plenty for latency and
/// distance distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in (its bit length).
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `index` can hold.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i >= 64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Folds `other`'s samples into `self`, as if every sample had been
    /// recorded here.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (`p` in `[0, 1]`), reported as the upper bound
    /// of the bucket containing that rank; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(64)
    }

    /// JSON summary: count/sum/min/max/mean, p50/p90/p99, and the non-empty
    /// buckets as `{le, count}` pairs.
    pub fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Value::Object(vec![
                    ("le".into(), Value::UInt(Self::bucket_upper_bound(i))),
                    ("count".into(), Value::UInt(c)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("min".into(), Value::UInt(self.min())),
            ("max".into(), Value::UInt(self.max())),
            ("mean".into(), Value::Float(self.mean())),
            ("p50".into(), Value::UInt(self.percentile(0.50))),
            ("p90".into(), Value::UInt(self.percentile(0.90))),
            ("p99".into(), Value::UInt(self.percentile(0.99))),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins value.
    Gauge(f64),
    /// A log2-bucketed distribution (boxed: the fixed bucket array dwarfs
    /// the other variants).
    Histogram(Box<Log2Histogram>),
}

/// A registry of metrics addressable by dotted path.
///
/// Paths like `l2.prefetch.issued` form a hierarchy; [`MetricsRegistry::to_value`]
/// dumps the tree as nested JSON objects. Re-using a path with a different
/// metric kind panics (it is a programming error, not an input error).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    map: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter at `path`, creating it at zero first.
    pub fn count(&mut self, path: &str, n: u64) {
        match self
            .map
            .entry(path.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            other => panic!("metric `{path}` is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge at `path`.
    pub fn set_gauge(&mut self, path: &str, value: f64) {
        match self
            .map
            .entry(path.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(g) => *g = value,
            other => panic!("metric `{path}` is not a gauge: {other:?}"),
        }
    }

    /// Records a sample into the histogram at `path`.
    pub fn observe(&mut self, path: &str, value: u64) {
        match self
            .map
            .entry(path.to_string())
            .or_insert_with(|| Metric::Histogram(Box::new(Log2Histogram::new())))
        {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric `{path}` is not a histogram: {other:?}"),
        }
    }

    /// The counter at `path`, if present.
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.map.get(path) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The gauge at `path`, if present.
    pub fn gauge(&self, path: &str) -> Option<f64> {
        match self.map.get(path) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The histogram at `path`, if present.
    pub fn histogram(&self, path: &str) -> Option<&Log2Histogram> {
        match self.map.get(path) {
            Some(Metric::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(path, metric)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Dumps the registry as a nested JSON object following the dotted
    /// paths. A path that is both a leaf and a branch (e.g. `a.b` and
    /// `a.b.c`) stores the leaf under the reserved key `"value"`.
    pub fn to_value(&self) -> Value {
        let mut root = Node::Branch(BTreeMap::new());
        for (path, metric) in &self.map {
            root.insert(path.split('.'), metric_value(metric));
        }
        root.into_value()
    }
}

fn metric_value(m: &Metric) -> Value {
    match m {
        Metric::Counter(c) => Value::UInt(*c),
        Metric::Gauge(g) => Value::Float(*g),
        Metric::Histogram(h) => h.to_value(),
    }
}

/// Intermediate tree for nesting dotted paths into JSON objects.
enum Node {
    Branch(BTreeMap<String, Node>),
    Leaf(Value),
}

impl Node {
    fn insert<'a>(&mut self, mut segments: impl Iterator<Item = &'a str>, value: Value) {
        let Some(seg) = segments.next() else {
            // End of path: attach the leaf here, demoting to a "value" slot
            // if this node already branches.
            match self {
                Node::Branch(children) if children.is_empty() => *self = Node::Leaf(value),
                Node::Branch(children) => {
                    children.insert("value".to_string(), Node::Leaf(value));
                }
                Node::Leaf(_) => *self = Node::Leaf(value),
            }
            return;
        };
        // Descend: a leaf in the way is demoted into the branch's "value".
        if let Node::Leaf(_) = self {
            let old = std::mem::replace(self, Node::Branch(BTreeMap::new()));
            if let (Node::Branch(children), Node::Leaf(v)) = (&mut *self, old) {
                children.insert("value".to_string(), Node::Leaf(v));
            }
        }
        let Node::Branch(children) = self else {
            unreachable!()
        };
        children
            .entry(seg.to_string())
            .or_insert_with(|| Node::Branch(BTreeMap::new()))
            .insert(segments, value);
    }

    fn into_value(self) -> Value {
        match self {
            Node::Leaf(v) => v,
            Node::Branch(children) => Value::Object(
                children
                    .into_iter()
                    .map(|(k, n)| (k, n.into_value()))
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Log2Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Log2Histogram::bucket_upper_bound(11), 2047);
        assert_eq!(Log2Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Log2Histogram::new();
        // 90 fast samples (value 10, bucket le=15) and 10 slow (value 1000,
        // bucket le=1023).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.percentile(0.50), 15);
        assert_eq!(h.percentile(0.90), 15);
        assert_eq!(h.percentile(0.99), 1023);
        assert_eq!(h.percentile(1.0), 1023);
        assert_eq!(
            h.percentile(0.0),
            15,
            "p0 clamps to the first sample's bucket"
        );
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every percentile is 0, including the extremes.
        let empty = Log2Histogram::new();
        assert_eq!(empty.percentile(0.0), 0);
        assert_eq!(empty.percentile(1.0), 0);

        // Single bucket: all percentiles collapse to its upper bound.
        let mut single = Log2Histogram::new();
        for _ in 0..5 {
            single.record(6); // bucket le = 7
        }
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(single.percentile(p), 7, "p = {p}");
        }

        // One sample of zero lands in the dedicated zero bucket.
        let mut zero = Log2Histogram::new();
        zero.record(0);
        assert_eq!(zero.percentile(0.0), 0);
        assert_eq!(zero.percentile(1.0), 0);

        // Out-of-range p clamps rather than panicking or skewing ranks.
        let mut h = Log2Histogram::new();
        h.record(1);
        h.record(1000);
        assert_eq!(h.percentile(-0.5), h.percentile(0.0));
        assert_eq!(h.percentile(1.5), h.percentile(1.0));
        assert_eq!(h.percentile(1.0), 1023);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.count("l2.prefetch.issued", 3);
        r.count("l2.prefetch.issued", 2);
        r.set_gauge("run.seconds", 1.5);
        r.observe("l2.demand.latency", 300);
        assert_eq!(r.counter("l2.prefetch.issued"), Some(5));
        assert_eq!(r.gauge("run.seconds"), Some(1.5));
        assert_eq!(r.histogram("l2.demand.latency").unwrap().count(), 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("x", 1.0);
        r.count("x", 1);
    }

    #[test]
    fn nested_json_dump() {
        let mut r = MetricsRegistry::new();
        r.count("l2.prefetch.issued", 7);
        r.count("l2.prefetch.dropped.duplicate", 2);
        r.count("cpu.instructions", 100);
        let v = r.to_value();
        let l2 = v.get("l2").unwrap().get("prefetch").unwrap();
        assert_eq!(l2.get("issued").unwrap().as_u64(), Some(7));
        assert_eq!(
            l2.get("dropped")
                .unwrap()
                .get("duplicate")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            v.get("cpu").unwrap().get("instructions").unwrap().as_u64(),
            Some(100)
        );
    }

    #[test]
    fn leaf_branch_collision_uses_value_key() {
        let mut r = MetricsRegistry::new();
        r.count("a.b", 1);
        r.count("a.b.c", 2);
        let v = r.to_value();
        let ab = v.get("a").unwrap().get("b").unwrap();
        assert_eq!(ab.get("value").unwrap().as_u64(), Some(1));
        assert_eq!(ab.get("c").unwrap().as_u64(), Some(2));
    }
}
