//! Process-wide verbosity-gated logging.
//!
//! The harness binaries route all human-readable output through the
//! [`result!`](crate::result), [`status!`](crate::status),
//! [`detail!`](crate::detail), and [`warn!`](crate::warn) macros, gated by a
//! global [`Verbosity`] set once from the CLI (`--quiet` / `--progress`).
//! Machine artifacts (CSV, SVG, JSONL, manifests) are never gated.

use std::sync::atomic::{AtomicU8, Ordering};

/// How chatty the process is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Warnings only; result tables and progress are suppressed.
    Quiet,
    /// Result tables and one-line status notes (the default).
    Normal,
    /// Everything, including progress heartbeats and per-phase timings.
    Verbose,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Sets the process-wide verbosity.
pub fn set_level(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current process-wide verbosity.
pub fn level() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        2 => Verbosity::Verbose,
        _ => Verbosity::Normal,
    }
}

/// Applies the shared CLI verbosity flags: `--quiet` wins over
/// `--progress`/`--verbose`; with neither, the level is untouched.
pub fn apply_cli_flags<S: AsRef<str>>(args: &[S]) {
    let has = |flag: &str| args.iter().any(|a| a.as_ref() == flag);
    if has("--quiet") {
        set_level(Verbosity::Quiet);
    } else if has("--progress") || has("--verbose") {
        set_level(Verbosity::Verbose);
    }
}

/// Primary human-readable output (tables, figures) on stdout; suppressed by
/// `--quiet`.
#[macro_export]
macro_rules! result {
    ($($arg:tt)*) => {
        if $crate::log::level() > $crate::log::Verbosity::Quiet {
            println!($($arg)*);
        }
    };
}

/// One-line status notes on stderr; suppressed by `--quiet`.
#[macro_export]
macro_rules! status {
    ($($arg:tt)*) => {
        if $crate::log::level() > $crate::log::Verbosity::Quiet {
            eprintln!($($arg)*);
        }
    };
}

/// Verbose diagnostics (heartbeats, timings) on stderr; shown only with
/// `--progress`/`--verbose`.
#[macro_export]
macro_rules! detail {
    ($($arg:tt)*) => {
        if $crate::log::level() >= $crate::log::Verbosity::Verbose {
            eprintln!($($arg)*);
        }
    };
}

/// Warnings and recoverable errors on stderr; never suppressed.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        eprintln!($($arg)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The level is process-global, so exercise transitions in ONE test to
    // avoid order dependence across the parallel test harness.
    #[test]
    fn verbosity_transitions() {
        let initial = level();

        set_level(Verbosity::Quiet);
        assert_eq!(level(), Verbosity::Quiet);
        apply_cli_flags(&["--progress"]);
        assert_eq!(level(), Verbosity::Verbose);
        // --quiet wins over --progress.
        apply_cli_flags(&["--progress", "--quiet"]);
        assert_eq!(level(), Verbosity::Quiet);
        // No flags: untouched.
        apply_cli_flags(&["--scale", "tiny"]);
        assert_eq!(level(), Verbosity::Quiet);

        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);

        set_level(initial);
    }
}
