//! Wall-clock phase timing and progress heartbeats for the runner.

use crate::span::Spans;
use std::time::{Duration, Instant};

/// Accumulates named, non-overlapping wall-clock phases.
///
/// `begin` implicitly closes any phase still open, so a runner can call it
/// at each transition and `finish` once at the end.
///
/// With a span collector attached ([`Profiler::attach_spans`]), each
/// `begin`/`end` pair additionally lands on the calling thread's timeline
/// lane, so the existing `phase.*` boundaries show up in a Chrome trace
/// without touching the call sites.
#[derive(Debug, Clone)]
pub struct Profiler {
    phases: Vec<(String, Duration)>,
    active: Option<(String, Instant)>,
    spans: Spans,
    /// Raw span index of the open phase, when spans are attached.
    open_span: Option<usize>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates a profiler with no phases.
    pub fn new() -> Self {
        Profiler {
            phases: Vec::new(),
            active: None,
            spans: Spans::disabled(),
            open_span: None,
        }
    }

    /// Mirrors every subsequent `begin`/`end` phase as a span on `spans`
    /// (the calling thread's lane).
    pub fn attach_spans(&mut self, spans: Spans) {
        self.spans = spans;
    }

    /// Starts a named phase, closing the previous one if still open.
    pub fn begin(&mut self, name: impl Into<String>) {
        self.end();
        let name = name.into();
        // Span names mirror the `phase.<name>.seconds` gauges; the format
        // only runs when a collector is attached and enabled.
        self.open_span = if self.spans.is_enabled() {
            self.spans.begin_raw(&format!("phase.{name}"))
        } else {
            None
        };
        self.active = Some((name, Instant::now()));
    }

    /// Closes the open phase, if any, and returns its duration.
    pub fn end(&mut self) -> Option<Duration> {
        if let Some(idx) = self.open_span.take() {
            self.spans.end_raw(idx);
        }
        let (name, started) = self.active.take()?;
        let elapsed = started.elapsed();
        // Repeated phases (e.g. one `simulate` per workload) accumulate.
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, d)) => *d += elapsed,
            None => self.phases.push((name, elapsed)),
        }
        Some(elapsed)
    }

    /// Adds `elapsed` to the named phase without opening it (accumulating
    /// like a repeated [`Profiler::begin`]/[`Profiler::end`] pair). Lets
    /// callers that measure time themselves — e.g. parallel workers timing
    /// jobs — feed a shared profiler.
    pub fn record(&mut self, name: impl Into<String>, elapsed: Duration) {
        let name = name.into();
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, d)) => *d += elapsed,
            None => self.phases.push((name, elapsed)),
        }
    }

    /// Accumulates every closed phase of `other` into this profiler.
    /// Workers each keep a private profiler; the engine merges them into
    /// one per-phase total at the end of a run.
    pub fn merge(&mut self, other: &Profiler) {
        for (name, d) in other.phases() {
            self.record(name.clone(), *d);
        }
    }

    /// The recorded `(name, total duration)` pairs, in first-seen order.
    /// Call [`Profiler::end`] first to include the open phase.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Total recorded time across all closed phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// A multi-line human-readable report with per-phase percentages.
    pub fn report(&self) -> String {
        let total = self.total().as_secs_f64().max(1e-12);
        let mut out = String::new();
        for (name, d) in &self.phases {
            let secs = d.as_secs_f64();
            out.push_str(&format!(
                "  {name:<24} {secs:>9.3} s  ({:>5.1}%)\n",
                secs / total * 100.0
            ));
        }
        out.push_str(&format!("  {:<24} {total:>9.3} s", "total"));
        out
    }

    /// Exports each phase as a `phase.<name>.seconds` gauge.
    pub fn export(&self, telemetry: &crate::Telemetry) {
        for (name, d) in &self.phases {
            telemetry.set_gauge(&format!("phase.{name}.seconds"), d.as_secs_f64());
        }
    }
}

/// Rate-limited progress reporter: at most one message per interval, with
/// events/second and an ETA extrapolated from the mean rate so far.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    started: Instant,
    last_emit: Option<Instant>,
    interval: Duration,
}

impl Heartbeat {
    /// Creates a heartbeat emitting at most once per `interval`.
    pub fn new(interval: Duration) -> Self {
        Heartbeat {
            started: Instant::now(),
            last_emit: None,
            interval,
        }
    }

    /// Reports progress of `done` out of `total` units. Returns a formatted
    /// message when the interval has elapsed since the last emission,
    /// `None` otherwise.
    pub fn tick(&mut self, done: u64, total: u64) -> Option<String> {
        let now = Instant::now();
        if let Some(last) = self.last_emit {
            if now.duration_since(last) < self.interval {
                return None;
            }
        }
        self.last_emit = Some(now);
        let elapsed = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let msg = if total > 0 && rate > 0.0 {
            let eta = (total.saturating_sub(done)) as f64 / rate;
            format!(
                "{done}/{total} events ({:.1}%), {}/s, ETA {eta:.1} s",
                done as f64 / total as f64 * 100.0,
                fmt_rate(rate),
            )
        } else {
            format!("{done} events, {}/s", fmt_rate(rate))
        };
        Some(msg)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_accumulates_and_reports() {
        let mut p = Profiler::new();
        p.begin("generate");
        std::thread::sleep(Duration::from_millis(2));
        p.begin("simulate"); // implicitly closes "generate"
        std::thread::sleep(Duration::from_millis(2));
        p.begin("simulate"); // repeated phase accumulates
        std::thread::sleep(Duration::from_millis(2));
        p.end();
        assert_eq!(p.phases().len(), 2);
        assert!(p.total() >= Duration::from_millis(6));
        let report = p.report();
        assert!(report.contains("generate"));
        assert!(report.contains("simulate"));
        assert!(report.contains("total"));
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = Profiler::new();
        a.record("simulate", Duration::from_millis(5));
        a.record("simulate", Duration::from_millis(5));
        a.record("generate", Duration::from_millis(1));
        let mut b = Profiler::new();
        b.record("simulate", Duration::from_millis(10));
        a.merge(&b);
        assert_eq!(a.phases().len(), 2);
        let sim = a
            .phases()
            .iter()
            .find(|(n, _)| n == "simulate")
            .map(|(_, d)| *d)
            .unwrap();
        assert_eq!(sim, Duration::from_millis(20));
        assert_eq!(a.total(), Duration::from_millis(21));
    }

    #[test]
    fn end_without_begin_is_none() {
        let mut p = Profiler::new();
        assert!(p.end().is_none());
        assert!(p.phases().is_empty());
    }

    #[test]
    fn attached_spans_mirror_phases() {
        let spans = Spans::enabled();
        spans.adopt_lane(spans.lane("main"));
        let mut p = Profiler::new();
        p.attach_spans(spans.clone());
        p.begin("static_tables");
        p.begin("sweep"); // implicitly ends static_tables (and its span)
        p.end();
        let rec = spans.records();
        let names: Vec<&str> = rec.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["phase.static_tables", "phase.sweep"]);
        assert!(rec.iter().all(|r| r.dur_us.is_some()), "all spans closed");
        // The phase totals are unaffected by the mirroring.
        assert_eq!(p.phases().len(), 2);
    }

    #[test]
    fn heartbeat_rate_limits() {
        let mut h = Heartbeat::new(Duration::from_secs(3600));
        let first = h.tick(10, 100);
        assert!(first.is_some());
        assert!(first.unwrap().contains("10/100"));
        assert!(h.tick(20, 100).is_none(), "second tick inside the interval");
    }

    #[test]
    fn heartbeat_zero_total_omits_eta() {
        let mut h = Heartbeat::new(Duration::ZERO);
        let msg = h.tick(5, 0).unwrap();
        assert!(!msg.contains("ETA"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(500.0), "500");
        assert_eq!(fmt_rate(2500.0), "2.5k");
        assert_eq!(fmt_rate(3_200_000.0), "3.20M");
    }
}
