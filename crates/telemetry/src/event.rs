//! Typed simulator events captured by the trace ring.

use serde::{Deserialize, Serialize};

/// Why a prefetch request was dropped before issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The target line was already resident, queued, or in flight.
    Duplicate,
    /// The prefetch queue was full; the oldest request was discarded.
    QueueOverflow,
}

/// How a committed demand access interacted with the hierarchy and the
/// prefetch engine — the paper's Fig. 13 taxonomy plus the two hit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemandKind {
    /// Serviced by the L1D; never reached the L2.
    L1Hit,
    /// L2 hit on a demand-fetched (or already-referenced) line.
    PlainHit,
    /// First hit on a completed prefetch: the miss was eliminated.
    Timely,
    /// The prefetch was still in flight: latency reduced, not eliminated.
    ShorterWaitingTime,
    /// The line was queued for prefetch but never issued.
    NonTimely,
    /// No prefetch involvement: a plain miss.
    Missing,
}

/// Cache level an eviction happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheLevel {
    /// The L1 data cache.
    L1d,
    /// The unified, inclusive L2.
    L2,
}

/// One structured simulator event.
///
/// Fields are raw integers (line addresses, block ids) rather than the
/// `cbws-trace` newtypes so this crate stays dependency-light and the JSONL
/// export is self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A prefetch request was accepted into the queue.
    PrefetchEnqueued {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Target line address.
        line: u64,
    },
    /// A queued prefetch was issued to main memory.
    PrefetchIssued {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Target line address.
        line: u64,
    },
    /// An in-flight prefetch completed into the L2.
    PrefetchFilled {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Filled line address.
        line: u64,
        /// Whether a demand access already referenced the line (a
        /// shorter-waiting-time merge) by fill time.
        referenced: bool,
    },
    /// A prefetch request was dropped before issue.
    PrefetchDropped {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Target line address.
        line: u64,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A committed demand access, classified per the Fig. 13 taxonomy.
    Demand {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Accessed line address.
        line: u64,
        /// Classification of the access.
        kind: DemandKind,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// A line was evicted from a cache.
    Eviction {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Evicted line address.
        line: u64,
        /// Cache level the eviction happened at.
        level: CacheLevel,
        /// Whether the victim was dirty (written back).
        dirty: bool,
    },
    /// A `BLOCK_BEGIN(id)` instruction committed.
    BlockBegin {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Static block id.
        block: u32,
    },
    /// A `BLOCK_END(id)` instruction committed.
    BlockEnd {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Static block id.
        block: u32,
        /// Lines the prefetcher predicted at this boundary.
        predicted: u32,
    },
    /// A differential-history-table lookup at a `BLOCK_END`.
    TableLookup {
        /// Commit-timeline cycle.
        cycle: u64,
        /// Static block id.
        block: u32,
        /// Whether any step's lookup hit.
        hit: bool,
    },
}

impl SimEvent {
    /// The cycle the event was stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            SimEvent::PrefetchEnqueued { cycle, .. }
            | SimEvent::PrefetchIssued { cycle, .. }
            | SimEvent::PrefetchFilled { cycle, .. }
            | SimEvent::PrefetchDropped { cycle, .. }
            | SimEvent::Demand { cycle, .. }
            | SimEvent::Eviction { cycle, .. }
            | SimEvent::BlockBegin { cycle, .. }
            | SimEvent::BlockEnd { cycle, .. }
            | SimEvent::TableLookup { cycle, .. } => cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = [
            SimEvent::PrefetchEnqueued { cycle: 1, line: 2 },
            SimEvent::PrefetchIssued { cycle: 3, line: 4 },
            SimEvent::PrefetchFilled {
                cycle: 5,
                line: 6,
                referenced: true,
            },
            SimEvent::PrefetchDropped {
                cycle: 7,
                line: 8,
                reason: DropReason::Duplicate,
            },
            SimEvent::Demand {
                cycle: 9,
                line: 10,
                kind: DemandKind::Timely,
                latency: 32,
            },
            SimEvent::Eviction {
                cycle: 11,
                line: 12,
                level: CacheLevel::L2,
                dirty: false,
            },
            SimEvent::BlockBegin {
                cycle: 13,
                block: 1,
            },
            SimEvent::BlockEnd {
                cycle: 14,
                block: 1,
                predicted: 3,
            },
            SimEvent::TableLookup {
                cycle: 15,
                block: 1,
                hit: true,
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: SimEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e, "{json}");
        }
    }

    #[test]
    fn cycle_accessor_matches_field() {
        let e = SimEvent::Demand {
            cycle: 42,
            line: 0,
            kind: DemandKind::Missing,
            latency: 332,
        };
        assert_eq!(e.cycle(), 42);
    }
}
