#![warn(missing_docs)]

//! Observability substrate for the CBWS simulator.
//!
//! Three layers, all dependency-light (std + the workspace serde stand-ins):
//!
//! * **Event tracing** — a fixed-capacity [`EventRing`] of structured
//!   [`SimEvent`]s (prefetch lifecycle, Fig. 13 demand classification, CBWS
//!   block boundaries, differential-history-table lookups, cache evictions)
//!   with cycle timestamps, exportable as JSONL.
//! * **Metrics** — a hierarchical [`MetricsRegistry`] of counters, gauges,
//!   and [`Log2Histogram`]s addressable by dotted path
//!   (`l2.prefetch.issued`), dumpable as nested JSON.
//! * **Logging & profiling** — verbosity-gated [`result!`]/[`status!`]/
//!   [`detail!`]/[`warn!`] macros, per-phase wall-clock [`Profiler`], and a
//!   rate-limited progress [`Heartbeat`].
//!
//! The [`Telemetry`] handle ties the first two together. It is cheap to
//! clone and share across the simulator layers, and a
//! [`Telemetry::disabled`] handle reduces every hot-path call to one branch
//! on a `None` — verified by the `telemetry_overhead` microbenchmark in
//! `cbws-bench`.
//!
//! ```
//! use cbws_telemetry::{SimEvent, Telemetry};
//!
//! let t = Telemetry::enabled(1024);
//! t.set_clock(100);
//! t.record(|now| SimEvent::PrefetchIssued { cycle: now, line: 42 });
//! t.count("l2.prefetch.issued", 1);
//! t.observe("l2.demand.latency", 332);
//! assert_eq!(t.events().len(), 1);
//!
//! let off = Telemetry::disabled();
//! off.record(|now| SimEvent::PrefetchIssued { cycle: now, line: 42 }); // no-op
//! assert!(off.events().is_empty());
//! ```

mod event;
mod metrics;
mod profile;
mod ring;
mod span;

pub mod log;

pub use event::{CacheLevel, DemandKind, DropReason, SimEvent};
pub use log::Verbosity;
pub use metrics::{Log2Histogram, Metric, MetricsRegistry};
pub use profile::{Heartbeat, Profiler};
pub use ring::EventRing;
pub use span::{chrome_trace, SpanGuard, SpanRecord, Spans};

use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Default event-ring capacity for [`Telemetry::enabled_default`].
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

struct Inner {
    ring: EventRing,
    metrics: MetricsRegistry,
    /// Latest simulation cycle seen, used to stamp events from components
    /// that have no clock of their own (e.g. the CBWS predictor).
    now: u64,
    heartbeat: Heartbeat,
}

/// A shared, cloneable telemetry sink.
///
/// Disabled handles carry no allocation and make every recording call a
/// single branch; enabled handles share one ring + registry behind a mutex
/// (the simulator is single-threaded per run, so the lock is uncontended).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
    /// Span collector, orthogonal to the event/metrics sink: a disabled
    /// `Telemetry` can still carry enabled spans (the engine keeps per-run
    /// simulator telemetry off but wants `core.run` on the timeline).
    spans: Spans,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry(disabled)"),
            Some(m) => {
                let g = lock(m);
                write!(
                    f,
                    "Telemetry(events: {}, metrics: {})",
                    g.ring.len(),
                    g.metrics.len()
                )
            }
        }
    }
}

fn lock(m: &Arc<Mutex<Inner>>) -> MutexGuard<'_, Inner> {
    // A panic mid-record leaves no broken invariants worth poisoning over.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Telemetry {
    /// A no-op sink: every call returns immediately.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            spans: Spans::disabled(),
        }
    }

    /// An active sink with an event ring of `event_capacity`.
    pub fn enabled(event_capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner {
                ring: EventRing::new(event_capacity),
                metrics: MetricsRegistry::new(),
                now: 0,
                heartbeat: Heartbeat::new(Duration::from_secs(1)),
            }))),
            spans: Spans::disabled(),
        }
    }

    /// Attaches a span collector (builder-style). Spans ride along with
    /// every clone of this handle, independent of whether events/metrics
    /// are enabled.
    pub fn with_spans(mut self, spans: Spans) -> Self {
        self.spans = spans;
        self
    }

    /// The attached span collector (disabled by default).
    pub fn spans(&self) -> &Spans {
        &self.spans
    }

    /// Opens a span on the attached collector; inert when no enabled
    /// collector was attached. One branch on the disabled path.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.spans.begin(name)
    }

    /// An active sink with the default ring capacity.
    pub fn enabled_default() -> Self {
        Self::enabled(DEFAULT_EVENT_CAPACITY)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the shared event clock to `cycle` (monotone). Components
    /// with real timestamps call this; clock-less components inherit the
    /// stamp via the closure argument of [`Telemetry::record`].
    #[inline]
    pub fn set_clock(&self, cycle: u64) {
        let Some(inner) = &self.inner else { return };
        let mut g = lock(inner);
        g.now = g.now.max(cycle);
    }

    /// Records one event. The closure receives the current event clock and
    /// is only invoked when telemetry is enabled, so disabled handles pay
    /// one branch and never construct the event.
    #[inline]
    pub fn record(&self, make: impl FnOnce(u64) -> SimEvent) {
        let Some(inner) = &self.inner else { return };
        let mut g = lock(inner);
        let now = g.now;
        let event = make(now);
        g.now = g.now.max(event.cycle());
        g.ring.push(event);
    }

    /// Adds `n` to the counter at `path`.
    #[inline]
    pub fn count(&self, path: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        lock(inner).metrics.count(path, n);
    }

    /// Sets the gauge at `path`.
    #[inline]
    pub fn set_gauge(&self, path: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        lock(inner).metrics.set_gauge(path, value);
    }

    /// Records a histogram sample at `path`.
    #[inline]
    pub fn observe(&self, path: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        lock(inner).metrics.observe(path, value);
    }

    /// Reports progress (`done` of `total` trace events); prints a
    /// rate-limited heartbeat through [`detail!`] when verbose.
    #[inline]
    pub fn progress(&self, done: u64, total: u64) {
        if log::level() < Verbosity::Verbose {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let msg = lock(inner).heartbeat.tick(done, total);
        if let Some(msg) = msg {
            detail!("[progress] {msg}");
        }
    }

    /// Runs `f` against the metrics registry; `None` when disabled.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        Some(f(&mut lock(inner).metrics))
    }

    /// Snapshots the traced events, oldest-first.
    pub fn events(&self) -> Vec<SimEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(inner).ring.to_vec(),
        }
    }

    /// Events lost to ring wraparound.
    pub fn events_dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => lock(inner).ring.dropped(),
        }
    }

    /// Writes the event trace as JSON Lines: one event object per line,
    /// oldest-first.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_trace_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let events = lock(inner).ring.to_vec();
        for e in &events {
            let line = serde_json::to_string(e)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
        }
        w.flush()
    }

    /// The metrics dump as a nested JSON value; `None` when disabled.
    pub fn metrics_to_value(&self) -> Option<serde::Value> {
        let inner = self.inner.as_ref()?;
        Some(lock(inner).metrics.to_value())
    }

    /// Writes the metrics dump as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`. Disabled handles write `{}`.
    pub fn write_metrics_json<W: Write>(&self, mut w: W) -> io::Result<()> {
        let value = self
            .metrics_to_value()
            .unwrap_or(serde::Value::Object(Vec::new()));
        let text = serde_json::to_string_pretty(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(w, "{text}")?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.set_clock(10);
        t.record(|_| panic!("closure must not run when disabled"));
        t.count("a.b", 1);
        t.observe("a.h", 5);
        t.set_gauge("a.g", 1.0);
        assert!(t.events().is_empty());
        assert_eq!(t.events_dropped(), 0);
        assert!(t.metrics_to_value().is_none());
        assert!(t.with_metrics(|_| ()).is_none());
        let mut buf = Vec::new();
        t.write_trace_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn clock_stamps_clockless_events() {
        let t = Telemetry::enabled(16);
        t.set_clock(500);
        t.record(|now| SimEvent::TableLookup {
            cycle: now,
            block: 3,
            hit: true,
        });
        assert_eq!(t.events()[0].cycle(), 500);
        // The clock is monotone: an event with a later cycle advances it.
        t.record(|_| SimEvent::BlockEnd {
            cycle: 900,
            block: 3,
            predicted: 0,
        });
        t.set_clock(700); // ignored, older than 900
        t.record(|now| SimEvent::TableLookup {
            cycle: now,
            block: 3,
            hit: false,
        });
        assert_eq!(t.events()[2].cycle(), 900);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::enabled(16);
        let u = t.clone();
        u.count("shared.counter", 2);
        t.count("shared.counter", 3);
        assert_eq!(
            t.with_metrics(|m| m.counter("shared.counter")).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let t = Telemetry::enabled(16);
        t.record(|_| SimEvent::PrefetchEnqueued { cycle: 1, line: 10 });
        t.record(|_| SimEvent::Demand {
            cycle: 2,
            line: 10,
            kind: DemandKind::Missing,
            latency: 332,
        });
        let mut buf = Vec::new();
        t.write_trace_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: Vec<SimEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn metrics_json_has_dotted_hierarchy() {
        let t = Telemetry::enabled(16);
        t.count("l2.prefetch.issued", 4);
        t.observe("l2.demand.latency", 300);
        let v = t.metrics_to_value().unwrap();
        assert_eq!(
            v.get("l2")
                .unwrap()
                .get("prefetch")
                .unwrap()
                .get("issued")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        let mut buf = Vec::new();
        t.write_metrics_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"latency\""));
    }

    #[test]
    fn disabled_metrics_json_is_empty_object() {
        let mut buf = Vec::new();
        Telemetry::disabled().write_metrics_json(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().trim(), "{}");
    }

    #[test]
    fn spans_ride_along_with_clones() {
        let spans = Spans::enabled();
        spans.adopt_lane(spans.lane("worker-0"));
        // A disabled event/metrics sink can still carry enabled spans.
        let t = Telemetry::disabled().with_spans(spans.clone());
        assert!(!t.is_enabled());
        assert!(t.spans().is_enabled());
        let u = t.clone();
        {
            let _g = u.span("core.run");
        }
        let rec = spans.records();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].name, "core.run");
        // The default handle carries a disabled collector.
        let _inert = Telemetry::disabled().span("ignored");
        assert_eq!(spans.records().len(), 1);
    }
}
