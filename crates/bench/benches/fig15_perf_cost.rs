//! Bench regenerating Fig. 15 (performance/cost) on a representative
//! subset.

use cbws_bench::{tiny_sweep, REPRESENTATIVE};
use cbws_harness::experiments::fig15_perf_cost;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let records = tiny_sweep(&REPRESENTATIVE);
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("perf_cost_table", |b| {
        b.iter(|| black_box(fig15_perf_cost(&records)))
    });
    g.finish();

    eprintln!("\nFig. 15 (Tiny, subset):\n{}", fig15_perf_cost(&records));
}

criterion_group!(benches, bench);
criterion_main!(benches);
