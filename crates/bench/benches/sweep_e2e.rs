//! End-to-end sweep benchmark: the full `workloads × 7 prefetchers` matrix
//! run serially versus through the work-stealing engine, with a
//! byte-identical-results assertion in between. Writes the measured wall
//! clocks to `BENCH_sweep.json` at the repository root.
//!
//! ```text
//! cargo bench -p cbws-bench --bench sweep_e2e -- \
//!     [--scale tiny|small|full] [--jobs N] [--iters K]
//! ```
//!
//! Exits non-zero if the engine's records diverge from the serial sweep or
//! any record's Fig. 13 classification fails to partition — the CI
//! perf-smoke job relies on this as the determinism gate. Because the
//! serial sweep replays classic `Vec<TraceEvent>` traces while the engine
//! replays packed columnar traces from the store, the identity assertion
//! also cross-validates the two trace representations end to end.
//!
//! Four competitors are timed: the serial sweep (AoS traces, cold trace
//! cache each run), the engine with a **cold** trace store (pays DSL
//! generation plus encode/write), the engine with a **warm** store
//! (checksum-verified loads only — the steady state of repeated sweeps and
//! CI runs), and the engine with a **cached** result store (every job
//! served from a persisted `RunRecord`, skipping trace loads and
//! simulation entirely — the steady state of resumed or repeated
//! experiment sweeps). The first three legs run with the result cache off
//! so their timings keep the meaning they had before the result store
//! existed. Unless `CBWS_TRACE_STORE_DIR` / `CBWS_RESULT_STORE_DIR` are
//! already set, both stores are pointed at bench-owned scratch
//! directories so cold runs can wipe them safely.

use cbws_harness::engine::detect_parallelism;
use cbws_harness::experiments::{sweep, sweep_engine_with};
use cbws_harness::{result_store, ResultCache};
use cbws_workloads::{trace_cache, trace_store, Scale, WorkloadSpec, ALL};
use std::time::Instant;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    if std::env::var_os("CBWS_TRACE_STORE_DIR").is_none() {
        std::env::set_var(
            "CBWS_TRACE_STORE_DIR",
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/trace-store-bench"
            ),
        );
    }
    if std::env::var_os("CBWS_RESULT_STORE_DIR").is_none() {
        std::env::set_var(
            "CBWS_RESULT_STORE_DIR",
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/result-store-bench"
            ),
        );
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Tiny,
    };
    let scale_name = scale.to_string();
    let jobs: usize = arg_value(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let iters: usize = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let workloads: Vec<&'static WorkloadSpec> = ALL.iter().collect();
    let cores = detect_parallelism();
    eprintln!(
        "[sweep_e2e] scale = {scale_name}, {} workloads, jobs = {jobs} (0 = all {cores} cores), \
         best of {iters}",
        workloads.len()
    );

    // Serial competitor (best of `iters`, cold trace cache each time).
    let mut serial_secs = f64::INFINITY;
    let mut serial_records = Vec::new();
    for _ in 0..iters {
        trace_cache::shared().clear();
        let t = Instant::now();
        serial_records = sweep(scale, &workloads);
        serial_secs = serial_secs.min(t.elapsed().as_secs_f64());
    }
    eprintln!("[sweep_e2e] serial: {serial_secs:.3} s");

    // Engine competitor, cold store: every run regenerates, packs, and
    // writes each trace (comparable to pre-store engine runs).
    let store = trace_store::shared();
    let mut engine_secs = f64::INFINITY;
    let mut workers = 0;
    let mut engine_records = Vec::new();
    for _ in 0..iters {
        let _ = std::fs::remove_dir_all(store.dir());
        store.drop_memory();
        let run = sweep_engine_with(scale, &workloads, jobs, ResultCache::Off);
        engine_secs = engine_secs.min(run.wall_seconds);
        workers = run.workers;
        engine_records = run.records;
    }
    eprintln!("[sweep_e2e] engine (cold store): {engine_secs:.3} s on {workers} workers");

    // Engine competitor, warm store: files persist across runs, only the
    // in-process memoization is dropped, so each run pays verified loads
    // instead of generation — the steady state of repeated sweeps.
    let mut warm_secs = f64::INFINITY;
    let mut warm_records = Vec::new();
    let mut warm_workers = Vec::new();
    for _ in 0..iters {
        store.drop_memory();
        let run = sweep_engine_with(scale, &workloads, jobs, ResultCache::Off);
        if run.wall_seconds < warm_secs {
            warm_secs = run.wall_seconds;
            warm_workers = run.worker_stats;
        }
        warm_records = run.records;
    }
    eprintln!("[sweep_e2e] engine (warm store): {warm_secs:.3} s on {workers} workers");

    // Engine competitor, cached result store: one populate run persists
    // every job's RunRecord, then each measured run serves the full matrix
    // from the store — no trace loads, no simulation. This is the steady
    // state of `--resume` and of re-running an already-finished sweep.
    let rstore = result_store::shared();
    let _ = std::fs::remove_dir_all(rstore.dir());
    let populate = sweep_engine_with(scale, &workloads, jobs, ResultCache::Shared);
    assert_eq!(
        populate.store_misses(),
        populate.job_count,
        "populate run must simulate and persist every job"
    );
    let mut cached_secs = f64::INFINITY;
    let mut cached_records = Vec::new();
    let mut cached_hits = 0;
    let mut cached_misses = 0;
    for _ in 0..iters {
        let run = sweep_engine_with(scale, &workloads, jobs, ResultCache::Shared);
        assert_eq!(
            run.store_hits(),
            run.job_count,
            "cached run must serve every job from the result store"
        );
        cached_secs = cached_secs.min(run.wall_seconds);
        cached_hits = run.store_hits();
        cached_misses = run.store_misses();
        cached_records = run.records;
    }
    eprintln!("[sweep_e2e] engine (cached results): {cached_secs:.3} s on {workers} workers");

    // Determinism gate: byte-identical records, valid classification.
    assert_eq!(
        serial_records, engine_records,
        "engine records diverged from the serial sweep"
    );
    assert_eq!(
        engine_records, warm_records,
        "warm-store records diverged from the cold-store run"
    );
    assert_eq!(
        warm_records, cached_records,
        "result-store records diverged from fresh simulation"
    );
    assert!(
        engine_records
            .iter()
            .all(|r| r.mem.classification_is_partition()),
        "a record's Fig. 13 classification does not partition"
    );
    eprintln!(
        "[sweep_e2e] determinism: {} records byte-identical, classification partitions",
        engine_records.len()
    );

    let speedup = serial_secs / engine_secs;
    let warm_speedup = serial_secs / warm_secs;
    let cached_speedup = warm_secs / cached_secs;
    eprintln!(
        "[sweep_e2e] speedup: {speedup:.2}x cold, {warm_speedup:.2}x warm, \
         {cached_speedup:.2}x cached-over-warm"
    );

    // Record the measurement at the repository root. `workers_detail` is
    // the per-worker busy/idle split of the best warm run (the gated
    // competitor); perf-history skips the array and trends the scalars.
    let workers_detail: Vec<String> = warm_workers
        .iter()
        .map(|w| {
            format!(
                "    {{\"worker\": {}, \"jobs\": {}, \"busy_seconds\": {:.4}, \
                 \"idle_seconds\": {:.4}, \"store_hits\": {}, \"store_misses\": {}}}",
                w.worker, w.jobs, w.busy_seconds, w.idle_seconds, w.store_hits, w.store_misses
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sweep_e2e\",\n  \"scale\": \"{scale_name}\",\n  \
         \"workloads\": {},\n  \"prefetchers\": 7,\n  \"cores\": {cores},\n  \
         \"workers\": {workers},\n  \"iterations\": {iters},\n  \
         \"serial_seconds\": {serial_secs:.4},\n  \"engine_seconds\": {engine_secs:.4},\n  \
         \"engine_warm_seconds\": {warm_secs:.4},\n  \
         \"engine_cached_seconds\": {cached_secs:.4},\n  \
         \"speedup\": {speedup:.3},\n  \"warm_speedup\": {warm_speedup:.3},\n  \
         \"cached_speedup\": {cached_speedup:.3},\n  \
         \"result_store_hits\": {cached_hits},\n  \
         \"result_store_misses\": {cached_misses},\n  \
         \"identical_records\": true,\n  \"workers_detail\": [\n{}\n  ]\n}}\n",
        workloads.len(),
        workers_detail.join(",\n")
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_sweep.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[sweep_e2e] wrote {}", path.display()),
        Err(e) => eprintln!("[sweep_e2e] cannot write {}: {e}", path.display()),
    }
    print!("{json}");
}
