//! Ablation benches for the design choices DESIGN.md §7 calls out:
//!
//! * differential history table size (16 vs 64 vs 256 entries) — the
//!   fft/streamcluster thrash recovery;
//! * maximum CBWS vector length (16 vs 64 lines) — the bzip2 capacity
//!   effect (and the paper's claim that 16 suffices elsewhere);
//! * multi-step prediction depth (1..4) — the Fig. 7 timeliness argument;
//! * train-on-hits vs misses-only — the paper's central "compiler hints
//!   enable aggressiveness" claim;
//! * hybrid SMS-suppression policy.
//!
//! Each variant is timed by Criterion and its quality metrics (MPKI/IPC)
//! are printed once to stderr so the bench log doubles as the ablation
//! table.

use cbws_core::{CbwsConfig, CbwsPrefetcher, CbwsSmsPrefetcher, SmsSuppression};
use cbws_harness::PrefetchedMemory;
use cbws_prefetchers::SmsConfig;
use cbws_sim_cpu::{Core, CoreConfig};
use cbws_sim_mem::{HierarchyConfig, MemoryHierarchy};
use cbws_stats::RunRecord;
use cbws_trace::Trace;
use cbws_workloads::{by_name, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn run_cbws(trace: &Trace, cfg: CbwsConfig) -> RunRecord {
    let mut mem = PrefetchedMemory::new(
        MemoryHierarchy::new(HierarchyConfig::default()),
        CbwsPrefetcher::new(cfg),
    );
    let cpu = Core::new(CoreConfig::default()).run(trace, &mut mem);
    let mem = mem.finish();
    RunRecord {
        workload: "ablation".into(),
        memory_intensive: true,
        prefetcher: "CBWS".into(),
        cpu,
        mem,
    }
}

fn run_hybrid(trace: &Trace, policy: SmsSuppression) -> RunRecord {
    let mut mem = PrefetchedMemory::new(
        MemoryHierarchy::new(HierarchyConfig::default()),
        CbwsSmsPrefetcher::with_policy(CbwsConfig::default(), SmsConfig::default(), policy),
    );
    let cpu = Core::new(CoreConfig::default()).run(trace, &mut mem);
    let mem = mem.finish();
    RunRecord {
        workload: "ablation".into(),
        memory_intensive: true,
        prefetcher: "CBWS+SMS".into(),
        cpu,
        mem,
    }
}

fn table_size(c: &mut Criterion) {
    // fft thrashes a 16-entry table; a larger table recovers some hits.
    let trace = by_name("fft-simlarge").unwrap().generate(Scale::Tiny);
    let mut g = c.benchmark_group("ablation_table_size");
    g.sample_size(10);
    eprintln!("\n[ablation] history table size on fft:");
    for entries in [16usize, 64, 256] {
        let cfg = CbwsConfig {
            table_entries: entries,
            ..CbwsConfig::default()
        };
        let r = run_cbws(&trace, cfg);
        eprintln!(
            "  {entries:>3} entries: MPKI {:.2}  IPC {:.3}",
            r.mpki(),
            r.ipc()
        );
        g.bench_function(format!("fft_entries_{entries}"), |b| {
            b.iter(|| black_box(run_cbws(&trace, cfg)))
        });
    }
    g.finish();
}

fn vector_capacity(c: &mut Criterion) {
    // bzip2's 256-line blocks overflow a 16-line vector; 64 helps, at a
    // storage cost the paper judges unjustified (§VII-C).
    let trace = by_name("401.bzip2-source").unwrap().generate(Scale::Tiny);
    let mut g = c.benchmark_group("ablation_vector_capacity");
    g.sample_size(10);
    eprintln!("\n[ablation] CBWS vector capacity on bzip2:");
    for max_vector in [16usize, 64, 256] {
        let cfg = CbwsConfig {
            max_vector,
            ..CbwsConfig::default()
        };
        let r = run_cbws(&trace, cfg);
        eprintln!(
            "  {max_vector:>3} lines ({} bits): MPKI {:.2}  IPC {:.3}",
            cfg.storage_bits(),
            r.mpki(),
            r.ipc()
        );
        g.bench_function(format!("bzip2_capacity_{max_vector}"), |b| {
            b.iter(|| black_box(run_cbws(&trace, cfg)))
        });
    }
    g.finish();
}

fn prediction_depth(c: &mut Criterion) {
    // Deeper multi-step prediction buys timeliness on the stencil.
    let trace = by_name("stencil-default").unwrap().generate(Scale::Tiny);
    let mut g = c.benchmark_group("ablation_prediction_depth");
    g.sample_size(10);
    eprintln!("\n[ablation] prediction depth on stencil:");
    for depth in 1..=4usize {
        let cfg = CbwsConfig {
            prediction_depth: depth,
            ..CbwsConfig::default()
        };
        let r = run_cbws(&trace, cfg);
        eprintln!("  depth {depth}: MPKI {:.2}  IPC {:.3}", r.mpki(), r.ipc());
        g.bench_function(format!("stencil_depth_{depth}"), |b| {
            b.iter(|| black_box(run_cbws(&trace, cfg)))
        });
    }
    g.finish();
}

fn hit_training(c: &mut Criterion) {
    // The paper's core aggressiveness claim: tracking L1 hits (safe inside
    // compiler-annotated loops) versus the conservative misses-only
    // configuration static prefetchers are stuck with.
    let trace = by_name("stencil-default").unwrap().generate(Scale::Tiny);
    let mut g = c.benchmark_group("ablation_hit_training");
    g.sample_size(10);
    eprintln!("\n[ablation] observe L1 hits vs misses-only on stencil:");
    for observe_l1_hits in [true, false] {
        let cfg = CbwsConfig {
            observe_l1_hits,
            ..CbwsConfig::default()
        };
        let r = run_cbws(&trace, cfg);
        eprintln!(
            "  observe_hits={observe_l1_hits}: MPKI {:.2}  IPC {:.3}",
            r.mpki(),
            r.ipc()
        );
        g.bench_function(format!("stencil_hits_{observe_l1_hits}"), |b| {
            b.iter(|| black_box(run_cbws(&trace, cfg)))
        });
    }
    g.finish();
}

fn suppression_policy(c: &mut Criterion) {
    // Hybrid arbitration: how much SMS to silence.
    let mut g = c.benchmark_group("ablation_suppression");
    g.sample_size(10);
    for (bench, name) in [
        ("462.libquantum-ref", "libquantum"),
        ("stencil-default", "stencil"),
    ] {
        let trace = by_name(bench).unwrap().generate(Scale::Tiny);
        eprintln!("\n[ablation] SMS suppression policy on {name}:");
        for policy in [
            SmsSuppression::Never,
            SmsSuppression::WhenConfident,
            SmsSuppression::WhenCovering,
        ] {
            let r = run_hybrid(&trace, policy);
            eprintln!("  {policy:?}: MPKI {:.2}  IPC {:.3}", r.mpki(), r.ipc());
            g.bench_function(format!("{name}_{policy:?}"), |b| {
                b.iter(|| black_box(run_hybrid(&trace, policy)))
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    table_size,
    vector_capacity,
    prediction_depth,
    hit_training,
    suppression_policy
);
criterion_main!(benches);
