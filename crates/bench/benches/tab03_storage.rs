//! Bench regenerating Table III (storage budgets) — trivial computation,
//! benched to keep one target per paper artifact.

use cbws_harness::experiments::tab03_storage;
use cbws_harness::SystemConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    c.bench_function("tab03/storage_budgets", |b| {
        b.iter(|| black_box(tab03_storage(&cfg)))
    });
    eprintln!("\nTable III:\n{}", tab03_storage(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
