//! Bench regenerating Fig. 12 (MPKI matrix) on a representative subset.

use cbws_bench::{tiny_sweep, REPRESENTATIVE};
use cbws_harness::experiments::fig12_mpki;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("mpki_sweep_tiny", |b| {
        b.iter(|| black_box(tiny_sweep(&REPRESENTATIVE)))
    });
    g.finish();

    let records = tiny_sweep(&REPRESENTATIVE);
    eprintln!("\nFig. 12 (Tiny, subset):\n{}", fig12_mpki(&records));
}

criterion_group!(benches, bench);
criterion_main!(benches);
