//! Microbenchmarks of the simulator's hot paths: cache lookup, CBWS
//! observation/prediction, and each prefetcher's per-access training cost.

use cbws_core::{CbwsConfig, CbwsPredictor};
use cbws_prefetchers::{
    GhbConfig, GhbPrefetcher, PrefetchContext, Prefetcher, SmsPrefetcher, StridePrefetcher,
};
use cbws_sim_mem::{Cache, CacheConfig};
use cbws_trace::{Addr, BlockId, LineAddr, Pc};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cache_hot_path(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 32 * 1024,
        assoc: 4,
        latency: 2,
        mshrs: 4,
    });
    for i in 0..512u64 {
        cache.insert(LineAddr(i), false, None);
    }
    let mut i = 0u64;
    c.bench_function("cache/touch_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.touch(LineAddr(i), false))
        })
    });
    c.bench_function("cache/insert_evict", |b| {
        b.iter(|| {
            i += 1;
            black_box(cache.insert(LineAddr(i), false, None))
        })
    });
}

fn predictor_hot_path(c: &mut Criterion) {
    let mut p = CbwsPredictor::new(CbwsConfig::default());
    let mut iter = 0u64;
    c.bench_function("cbws/block_cycle", |b| {
        b.iter(|| {
            iter += 1;
            p.block_begin(BlockId(0));
            for k in 0..7u64 {
                p.observe(LineAddr(iter * 1024 + k * 3000));
            }
            black_box(p.block_end(BlockId(0)))
        })
    });
}

fn prefetcher_training(c: &mut Criterion) {
    let mut out = Vec::new();
    let mut i = 0u64;

    let mut stride = StridePrefetcher::default();
    c.bench_function("train/stride", |b| {
        b.iter(|| {
            i += 1;
            out.clear();
            stride.on_access(
                &PrefetchContext::demand_miss(Pc(0x40), Addr(i * 256)),
                &mut out,
            );
            black_box(out.len())
        })
    });

    let mut ghb = GhbPrefetcher::new(GhbConfig::pcdc());
    c.bench_function("train/ghb_pcdc", |b| {
        b.iter(|| {
            i += 1;
            out.clear();
            ghb.on_access(
                &PrefetchContext::demand_miss(Pc(0x40), Addr(i * 256)),
                &mut out,
            );
            black_box(out.len())
        })
    });

    let mut sms = SmsPrefetcher::default();
    c.bench_function("train/sms", |b| {
        b.iter(|| {
            i += 1;
            out.clear();
            sms.on_access(
                &PrefetchContext::demand_miss(Pc(0x40), Addr(i * 128)),
                &mut out,
            );
            black_box(out.len())
        })
    });
}

criterion_group!(
    benches,
    cache_hot_path,
    predictor_hot_path,
    prefetcher_training
);
criterion_main!(benches);
