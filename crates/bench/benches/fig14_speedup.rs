//! Bench regenerating Fig. 14 (IPC normalized to SMS) — the headline
//! result — on a representative subset.

use cbws_bench::{tiny_sweep, REPRESENTATIVE};
use cbws_harness::experiments::fig14_speedup;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("speedup_sweep_tiny", |b| {
        b.iter(|| {
            let records = tiny_sweep(&REPRESENTATIVE);
            black_box(fig14_speedup(&records))
        })
    });
    g.finish();

    let records = tiny_sweep(&REPRESENTATIVE);
    eprintln!("\nFig. 14 (Tiny, subset):\n{}", fig14_speedup(&records));
}

criterion_group!(benches, bench);
criterion_main!(benches);
