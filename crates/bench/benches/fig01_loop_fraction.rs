//! Bench regenerating Fig. 1 (loop runtime fractions) at Tiny scale.

use cbws_harness::experiments::fig01_loop_fraction;
use cbws_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01");
    g.sample_size(10);
    g.bench_function("loop_fraction_tiny", |b| {
        b.iter(|| black_box(fig01_loop_fraction(Scale::Tiny)))
    });
    g.finish();

    // Emit the regenerated artifact once so bench logs double as results.
    eprintln!("\nFig. 1 (Tiny):\n{}", fig01_loop_fraction(Scale::Tiny));
}

criterion_group!(benches, bench);
criterion_main!(benches);
