//! Microbenchmarks of the flattened cache array's hot paths: the fused
//! `demand_touch` probe (the L1-miss → L2 path of the hierarchy), the plain
//! `touch` probe, and insert-with-eviction. Guards the contiguous
//! set-major layout against regressions.

use cbws_sim_mem::{Cache, CacheConfig};
use cbws_trace::LineAddr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn l2_like_cache() -> Cache {
    // The evaluation's L2 point: 2 MB, 16-way.
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 2 * 1024 * 1024,
        assoc: 16,
        latency: 12,
        mshrs: 16,
    });
    for i in 0..(2 * 1024 * 1024 / 64) as u64 {
        cache.insert(LineAddr(i), false, None);
    }
    cache
}

fn bench(c: &mut Criterion) {
    let lines = (2 * 1024 * 1024 / 64) as u64;

    let mut cache = l2_like_cache();
    let mut i = 0u64;
    c.bench_function("cache/demand_touch_hit", |b| {
        b.iter(|| {
            i = (i + 1) % lines;
            black_box(cache.demand_touch(LineAddr(i), false))
        })
    });

    let mut cache = l2_like_cache();
    let mut i = 0u64;
    c.bench_function("cache/demand_touch_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(cache.demand_touch(LineAddr(lines + i), false))
        })
    });

    let mut cache = l2_like_cache();
    let mut i = 0u64;
    c.bench_function("cache/touch_hit", |b| {
        b.iter(|| {
            i = (i + 1) % lines;
            black_box(cache.touch(LineAddr(i), false))
        })
    });

    let mut cache = l2_like_cache();
    let mut i = 0u64;
    c.bench_function("cache/insert_evict", |b| {
        b.iter(|| {
            i += 1;
            black_box(cache.insert(LineAddr(lines + i), false, None))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
