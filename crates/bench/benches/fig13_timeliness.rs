//! Bench regenerating Fig. 13 (timeliness/accuracy) on a representative
//! subset.

use cbws_bench::{tiny_sweep, REPRESENTATIVE};
use cbws_harness::experiments::fig13_timeliness;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let records = tiny_sweep(&REPRESENTATIVE);
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("timeliness_table", |b| {
        b.iter(|| black_box(fig13_timeliness(&records)))
    });
    g.finish();

    eprintln!("\nFig. 13 (Tiny, subset, averages only):");
    let t = fig13_timeliness(&records);
    let rows = t.csv_rows();
    for row in rows.iter().filter(|r| r[0].starts_with("average")) {
        eprintln!("  {}", row.join("  "));
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
