//! Measures the cost of the telemetry layer, at two granularities:
//!
//! * primitive ops — `count`/`record`/`observe` with the sink disabled
//!   (the common case: one branch on an `Option`) and enabled;
//! * end-to-end — a full `Simulator::run` of a CBWS+SMS configuration
//!   with telemetry disabled and enabled.
//!
//! The disabled primitives are the interesting numbers: they are the entire
//! per-hook cost every ordinary (non-traced) run pays for the
//! instrumentation, and they must stay negligible (sub-ns per hook, <2% of
//! a reference simulation).

use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_telemetry::{SimEvent, Telemetry};
use cbws_workloads::{by_name, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn primitive_ops(c: &mut Criterion) {
    let disabled = Telemetry::disabled();
    c.bench_function("telemetry/count_disabled", |b| {
        b.iter(|| disabled.count(black_box("l2.prefetch.issued"), 1))
    });
    c.bench_function("telemetry/record_disabled", |b| {
        b.iter(|| {
            disabled.record(|now| SimEvent::PrefetchIssued {
                cycle: now,
                line: black_box(42),
            })
        })
    });
    c.bench_function("telemetry/observe_disabled", |b| {
        b.iter(|| disabled.observe(black_box("l2.demand.latency"), black_box(300)))
    });

    let enabled = Telemetry::enabled_default();
    c.bench_function("telemetry/count_enabled", |b| {
        b.iter(|| enabled.count(black_box("l2.prefetch.issued"), 1))
    });
    c.bench_function("telemetry/record_enabled", |b| {
        b.iter(|| {
            enabled.record(|now| SimEvent::PrefetchIssued {
                cycle: now,
                line: black_box(42),
            })
        })
    });
    c.bench_function("telemetry/observe_enabled", |b| {
        b.iter(|| enabled.observe(black_box("l2.demand.latency"), black_box(300)))
    });
}

fn end_to_end(c: &mut Criterion) {
    let trace = by_name("stencil-default").unwrap().generate(Scale::Tiny);
    let cfg = SystemConfig::default();

    let sim = Simulator::new(cfg);
    c.bench_function("sim/telemetry_disabled", |b| {
        b.iter(|| black_box(sim.run("stencil-default", true, &trace, PrefetcherKind::CbwsSms)))
    });

    let sim = Simulator::with_telemetry(cfg, Telemetry::enabled_default());
    c.bench_function("sim/telemetry_enabled", |b| {
        b.iter(|| black_box(sim.run("stencil-default", true, &trace, PrefetcherKind::CbwsSms)))
    });
}

criterion_group!(benches, primitive_ops, end_to_end);
criterion_main!(benches);
