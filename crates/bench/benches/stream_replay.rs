//! Streamed-replay benchmark: replays the same stored traces once from
//! fully resident frames (the warm in-memory path) and once through the
//! disk-backed [`FileCursor`] with read-ahead (the path the engine picks
//! above `CBWS_STREAM_THRESHOLD_BYTES`), and publishes the throughput
//! ratio, read-ahead stall fraction, and peak resident footprint of the
//! streamed pass. Writes the measurements to `BENCH_stream.json` at the
//! repository root.
//!
//! The streamed timing deliberately includes opening and validating the
//! store file each iteration: that is the real cost a fresh process pays
//! to replay a trace too big to keep resident, and it is the number the
//! `stream_throughput_ratio >= 0.7` gate in `perf-history check` pins.
//! The peak-resident figure comes from a counting global allocator, so it
//! is exact live-heap, not an RSS estimate.
//!
//! ```text
//! cargo bench -p cbws-bench --bench stream_replay -- \
//!     [--scale tiny|small|full] [--iters K]
//! ```
//!
//! Exits non-zero if the streamed records diverge from the in-memory
//! replay's — the replay representation must never change simulation
//! output.

use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_telemetry::Telemetry;
use cbws_workloads::trace_store::TraceStore;
use cbws_workloads::{by_name, Scale, WorkloadSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// [`System`] with live/peak accounting, so the streamed pass can report
/// its exact high-water heap mark alongside the wall clocks.
struct CountingAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Best-of-`iters` wall time of `f`, in seconds.
fn best_of(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };
    let scale_name = scale.to_string();
    let iters: usize = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let workloads: Vec<&'static WorkloadSpec> = ["stencil-default", "histo-large", "mxm-linpack"]
        .iter()
        .map(|n| by_name(n).expect("registered"))
        .collect();
    eprintln!(
        "[stream_replay] scale = {scale_name}, {} workloads, best of {iters}",
        workloads.len()
    );

    let sim = Simulator::new(SystemConfig::default());
    let kind = PrefetcherKind::CbwsSms;

    // Cold-generate the store files once, then keep the frames resident
    // for the in-memory side. A separate store instance per side keeps the
    // per-store replay memoization from letting one side's decision leak
    // into the other's.
    let dir = std::env::temp_dir().join(format!("cbws-stream-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mem_store = TraceStore::at(&dir);
    let resident: Vec<_> = workloads.iter().map(|w| mem_store.get(w, scale)).collect();
    let events: usize = resident.iter().map(|t| t.event_count()).sum();
    let resident_bytes: u64 = resident.iter().map(|t| t.footprint_bytes()).sum();
    let file_bytes: u64 = workloads
        .iter()
        .map(|w| {
            std::fs::metadata(dir.join(format!("{}-{scale_name}.cbwstrace", w.name)))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .sum();

    // Representation must not change output: streamed records must equal
    // the in-memory replay's, workload by workload.
    {
        let stream_store = TraceStore::at(&dir);
        for (w, t) in workloads.iter().zip(resident.iter()) {
            let src = stream_store.replay_source(w, scale, 0);
            assert!(src.is_streamed(), "threshold 0 must stream {}", w.name);
            let a = sim.run(w.name, true, &**t, kind);
            let b = sim.run(w.name, true, &src, kind);
            assert_eq!(
                a, b,
                "streamed replay diverged from in-memory on {}",
                w.name
            );
        }
    }
    eprintln!("[stream_replay] determinism: streamed records identical to in-memory");

    // Warm in-memory replay: frames already resident, pure simulate.
    let memory_secs = best_of(iters, || {
        for (w, t) in workloads.iter().zip(resident.iter()) {
            std::hint::black_box(sim.run(w.name, true, &**t, kind));
        }
    });

    // Streamed replay: a fresh store per iteration, so every pass pays
    // open + footer validation + frame checksums, exactly like a fresh
    // process replaying a trace it cannot afford to load.
    let stream_secs = best_of(iters, || {
        let store = TraceStore::at(&dir);
        for w in &workloads {
            let src = store.replay_source(w, scale, 0);
            std::hint::black_box(sim.run(w.name, true, &src, kind));
        }
    });
    let ratio = memory_secs / stream_secs;
    eprintln!(
        "[stream_replay] replay: memory {memory_secs:.4} s, streamed {stream_secs:.4} s \
         (throughput ratio {ratio:.3}, {:.1} M events/s streamed)",
        events as f64 / stream_secs / 1e6
    );

    // Instrumented streamed pass: read-ahead stall accounting via the
    // store's telemetry sink, peak live heap via the counting allocator.
    // Separate from the timed loops so instrumentation cost never lands in
    // the published wall clocks.
    let telemetry = Telemetry::enabled_default();
    let probe_store = TraceStore::at(&dir);
    probe_store.set_telemetry(telemetry.clone());
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    for w in &workloads {
        let src = probe_store.replay_source(w, scale, 0);
        std::hint::black_box(sim.run(w.name, true, &src, kind));
    }
    let peak_stream_bytes = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    let counter = |name: &str| {
        telemetry
            .with_metrics(|m| m.counter(name).unwrap_or(0))
            .unwrap_or(0)
    };
    let frames = counter("trace.stream.frames");
    let stalls = counter("trace.stream.stalls");
    let stall_fraction = if frames > 0 {
        stalls as f64 / frames as f64
    } else {
        0.0
    };
    eprintln!(
        "[stream_replay] read-ahead: {frames} frames, {stalls} stalls \
         (fraction {stall_fraction:.3}); peak streamed heap {:.1} MiB vs \
         resident {:.1} MiB",
        peak_stream_bytes as f64 / (1024.0 * 1024.0),
        resident_bytes as f64 / (1024.0 * 1024.0)
    );
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"bench\": \"stream_replay\",\n  \"scale\": \"{scale_name}\",\n  \
         \"workloads\": {},\n  \"iterations\": {iters},\n  \
         \"events\": {events},\n  \
         \"file_bytes\": {file_bytes},\n  \
         \"resident_bytes\": {resident_bytes},\n  \
         \"replay_memory_seconds\": {memory_secs:.4},\n  \
         \"replay_stream_seconds\": {stream_secs:.4},\n  \
         \"stream_throughput_ratio\": {ratio:.3},\n  \
         \"stream_frames\": {frames},\n  \
         \"stream_stalls\": {stalls},\n  \
         \"stream_stall_fraction\": {stall_fraction:.3},\n  \
         \"peak_stream_resident_bytes\": {peak_stream_bytes},\n  \
         \"identical_records\": true\n}}\n",
        workloads.len(),
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_stream.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[stream_replay] wrote {}", path.display()),
        Err(e) => eprintln!("[stream_replay] cannot write {}: {e}", path.display()),
    }
    print!("{json}");
}
