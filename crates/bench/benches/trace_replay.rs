//! Trace-representation benchmark: replays the same workloads through the
//! simulator from the classic `Vec<TraceEvent>` (AoS) and from the packed
//! columnar [`PackedTrace`] (SoA cursor), and times the persistent trace
//! store's cold path (generate + encode + write) against its warm path
//! (checksum-verified load). Writes the measurements to `BENCH_trace.json`
//! at the repository root.
//!
//! Two replay ratios come out of it:
//!
//! * `replay_kernel_ratio` — AoS replay over packed replay with **both
//!   representations pre-materialized**: how close the cursor's
//!   decode-and-assemble intake gets to plain slice iteration. Slice
//!   iteration streams events the memory system hands over for free, so
//!   this ratio sits a little under 1.0 — the decode work is real.
//! * `replay_speedup` — the decision-relevant comparison, gated at ≥ 1.0
//!   by `perf-history check`. Traces *live* packed (that is what the
//!   trace store holds and what the engine replays from), so the actual
//!   alternative to cursor replay is materializing the AoS vector first
//!   and then replaying it. Packed must beat that end-to-end path, or
//!   direct packed replay would be the wrong engine default.
//!
//! ```text
//! cargo bench -p cbws-bench --bench trace_replay -- \
//!     [--scale tiny|small|full] [--iters K]
//! ```
//!
//! Exits non-zero if the packed replay's records diverge from the AoS
//! replay's — representation must never change simulation output.

use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_trace::PackedTrace;
use cbws_workloads::trace_store::TraceStore;
use cbws_workloads::{by_name, Scale, WorkloadSpec, ALL};
use std::time::Instant;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Best-of-`iters` wall time of `f`, in seconds.
fn best_of(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Tiny,
    };
    let scale_name = scale.to_string();
    let iters: usize = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let workloads: Vec<&'static WorkloadSpec> = if args.iter().any(|a| a == "--all") {
        ALL.iter().collect()
    } else {
        ["stencil-default", "histo-large", "mxm-linpack"]
            .iter()
            .map(|n| by_name(n).expect("registered"))
            .collect()
    };
    eprintln!(
        "[trace_replay] scale = {scale_name}, {} workloads, best of {iters}",
        workloads.len()
    );

    let sim = Simulator::new(SystemConfig::default());
    let kind = PrefetcherKind::CbwsSms;

    // Materialize both representations up front so replay timing is pure.
    let traces: Vec<_> = workloads.iter().map(|w| w.generate(scale)).collect();
    let packed: Vec<PackedTrace> = traces.iter().map(PackedTrace::from_trace).collect();

    // Representation must not change output.
    for (w, (t, p)) in workloads.iter().zip(traces.iter().zip(packed.iter())) {
        let a = sim.run(w.name, true, t, kind);
        let b = sim.run(w.name, true, p, kind);
        assert_eq!(a, b, "packed replay diverged from AoS on {}", w.name);
    }
    eprintln!("[trace_replay] determinism: packed records identical to AoS");

    let aos_secs = best_of(iters, || {
        for (w, t) in workloads.iter().zip(traces.iter()) {
            std::hint::black_box(sim.run(w.name, true, t, kind));
        }
    });
    let packed_secs = best_of(iters, || {
        for (w, p) in workloads.iter().zip(packed.iter()) {
            std::hint::black_box(sim.run(w.name, true, p, kind));
        }
    });
    eprintln!(
        "[trace_replay] replay (pre-materialized): aos {aos_secs:.4} s, \
         packed {packed_secs:.4} s (kernel ratio {:.2}x)",
        aos_secs / packed_secs
    );

    // End-to-end from the stored representation: the store holds packed
    // traces, so replaying through AoS means materializing the event
    // vector first. This is the path direct packed replay has to beat.
    let aos_e2e_secs = best_of(iters, || {
        for (w, p) in workloads.iter().zip(packed.iter()) {
            let t = p.to_trace();
            std::hint::black_box(sim.run(w.name, true, &t, kind));
        }
    });
    eprintln!(
        "[trace_replay] replay (from stored packed): materialize+aos {aos_e2e_secs:.4} s, \
         packed {packed_secs:.4} s ({:.2}x)",
        aos_e2e_secs / packed_secs
    );

    // Store paths: cold = generate + encode + write, warm = verified load.
    // A fresh `TraceStore` per measurement models a fresh process (no
    // in-memory memoization).
    let dir = std::env::temp_dir().join(format!("cbws-trace-replay-{}", std::process::id()));
    let cold_secs = best_of(iters, || {
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::at(&dir);
        for w in &workloads {
            std::hint::black_box(store.get(w, scale));
        }
    });
    let warm_secs = best_of(iters, || {
        let store = TraceStore::at(&dir);
        for w in &workloads {
            std::hint::black_box(store.get(w, scale));
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "[trace_replay] store: cold {cold_secs:.4} s, warm {warm_secs:.4} s ({:.2}x)",
        cold_secs / warm_secs
    );

    let json = format!(
        "{{\n  \"bench\": \"trace_replay\",\n  \"scale\": \"{scale_name}\",\n  \
         \"workloads\": {},\n  \"iterations\": {iters},\n  \
         \"replay_aos_seconds\": {aos_secs:.4},\n  \
         \"replay_packed_seconds\": {packed_secs:.4},\n  \
         \"replay_kernel_ratio\": {:.3},\n  \
         \"replay_aos_materialized_seconds\": {aos_e2e_secs:.4},\n  \
         \"replay_speedup\": {:.3},\n  \
         \"store_cold_seconds\": {cold_secs:.4},\n  \
         \"store_warm_seconds\": {warm_secs:.4},\n  \
         \"store_warm_speedup\": {:.3},\n  \"identical_records\": true\n}}\n",
        workloads.len(),
        aos_secs / packed_secs,
        aos_e2e_secs / packed_secs,
        cold_secs / warm_secs
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_trace.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[trace_replay] wrote {}", path.display()),
        Err(e) => eprintln!("[trace_replay] cannot write {}: {e}", path.display()),
    }
    print!("{json}");
}
