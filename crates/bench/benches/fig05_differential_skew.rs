//! Bench regenerating Fig. 5 (differential skew CDF) at Tiny scale.

use cbws_harness::experiments::fig05_differential_skew;
use cbws_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05");
    g.sample_size(10);
    g.bench_function("differential_skew_tiny", |b| {
        b.iter(|| black_box(fig05_differential_skew(Scale::Tiny)))
    });
    g.finish();

    eprintln!("\nFig. 5 (Tiny):\n{}", fig05_differential_skew(Scale::Tiny));
}

criterion_group!(benches, bench);
criterion_main!(benches);
