//! Lane-decode throughput benchmark: times the packed trace's varint
//! operand lanes through the scalar reference decoder, the batched
//! word-at-a-time decoder, and the density-routed mix the cursor actually
//! runs (batched on ~1 B/entry lanes, scalar on wider ones), plus the
//! full cursor drain (tag dispatch + lane decode + event assembly)
//! against plain AoS slice iteration. Writes the measurements to
//! `BENCH_decode.json` at the repository root.
//!
//! ```text
//! cargo bench -p cbws-bench --bench decode_throughput -- \
//!     [--scale tiny|small|full] [--iters K]
//! ```
//!
//! Exits non-zero if the two decoders disagree on any lane — the batched
//! kernel must be indistinguishable from the scalar one.

use cbws_trace::{varint, EventCursor, EventSource, PackedTrace, Trace};
use cbws_workloads::{by_name, Scale, WorkloadSpec, ALL};
use std::time::Instant;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Best-of-`iters` wall time of `f`, in seconds.
fn best_of(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The four varint operand lanes of a packed trace, with entry counts.
fn operand_lanes(packed: &PackedTrace) -> Vec<(&'static str, &[u8], usize)> {
    packed
        .columns()
        .into_iter()
        .filter(|(name, _)| matches!(*name, "pcs" | "addr_deltas" | "alu_counts" | "block_ids"))
        .map(|(name, lane)| {
            let entries = varint::count_entries(lane)
                .unwrap_or_else(|| panic!("column `{name}` failed validation"));
            (name, lane, entries)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        _ => Scale::Tiny,
    };
    let scale_name = scale.to_string();
    let iters: usize = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let workloads: Vec<&'static WorkloadSpec> = if args.iter().any(|a| a == "--all") {
        ALL.iter().collect()
    } else {
        ["stencil-default", "histo-large", "mxm-linpack"]
            .iter()
            .map(|n| by_name(n).expect("registered"))
            .collect()
    };
    eprintln!(
        "[decode_throughput] scale = {scale_name}, {} workloads, best of {iters}",
        workloads.len()
    );

    let traces: Vec<Trace> = workloads.iter().map(|w| w.generate(scale)).collect();
    let packed: Vec<PackedTrace> = traces.iter().map(PackedTrace::from_trace).collect();
    let total_events: usize = packed.iter().map(PackedTrace::event_count).sum();
    let lanes: Vec<Vec<(&'static str, &[u8], usize)>> = packed.iter().map(operand_lanes).collect();
    let total_entries: usize = lanes
        .iter()
        .flat_map(|ls| ls.iter().map(|&(_, _, n)| n))
        .sum();
    let max_entries = lanes
        .iter()
        .flat_map(|ls| ls.iter().map(|&(_, _, n)| n))
        .max()
        .unwrap_or(0);
    for name in ["pcs", "addr_deltas", "alu_counts", "block_ids"] {
        let (bytes, entries): (usize, usize) = lanes
            .iter()
            .flat_map(|ls| ls.iter().filter(|&&(n, _, _)| n == name))
            .fold((0, 0), |(b, e), &(_, lane, n)| (b + lane.len(), e + n));
        eprintln!(
            "[decode_throughput]   lane {name}: {entries} entries, {bytes} bytes \
             ({:.2} B/entry)",
            bytes as f64 / entries.max(1) as f64
        );
    }
    let mut out = vec![0u64; max_entries];
    let mut check = vec![0u64; max_entries];

    // The kernels must agree entry for entry before timing means anything.
    for ls in &lanes {
        for &(_, lane, n) in ls {
            let (mut a, mut b) = (lane, lane);
            varint::decode_batch_scalar(&mut a, &mut check[..n]);
            varint::decode_batch(&mut b, &mut out[..n]);
            assert!(a.is_empty() && b.is_empty(), "lane not fully consumed");
            assert_eq!(check[..n], out[..n], "batched decode diverged from scalar");
        }
    }
    eprintln!("[decode_throughput] determinism: batched lanes identical to scalar");

    let scalar_secs = best_of(iters, || {
        for ls in &lanes {
            for &(_, lane, n) in ls {
                let mut rest = lane;
                varint::decode_batch_scalar(&mut rest, &mut out[..n]);
                std::hint::black_box(&out[..n]);
            }
        }
    });
    let batched_secs = best_of(iters, || {
        for ls in &lanes {
            for &(_, lane, n) in ls {
                let mut rest = lane;
                varint::decode_batch(&mut rest, &mut out[..n]);
                std::hint::black_box(&out[..n]);
            }
        }
    });
    // What the cursor actually runs: the word-at-a-time kernel on dense
    // (~1 B/entry) lanes where its 8-wide fast path fires every probe,
    // the scalar loop on wider lanes (same 9/8 threshold as
    // `PackedTrace::cursor`).
    let routed_secs = best_of(iters, || {
        for ls in &lanes {
            for &(_, lane, n) in ls {
                let mut rest = lane;
                if lane.len() * 8 <= n * 9 {
                    varint::decode_batch(&mut rest, &mut out[..n]);
                } else {
                    varint::decode_batch_scalar(&mut rest, &mut out[..n]);
                }
                std::hint::black_box(&out[..n]);
            }
        }
    });
    eprintln!(
        "[decode_throughput] lanes: scalar {scalar_secs:.4} s, batched {batched_secs:.4} s, \
         routed {routed_secs:.4} s ({:.0} M entries/s routed)",
        total_entries as f64 / routed_secs / 1e6
    );

    // Full cursor drain through the replay loop's chunked interface: tag
    // dispatch + lane decode + event assembly + read-ahead buffer, i.e.
    // what the packed replay pays per event before simulation work.
    let drain_secs = best_of(iters, || {
        for p in &packed {
            let mut n = 0usize;
            let mut cursor = EventSource::cursor(p);
            while let Some(chunk) = cursor.next_batch() {
                for &ev in chunk {
                    std::hint::black_box(&ev);
                    n += 1;
                }
            }
            assert_eq!(n, p.event_count());
        }
    });
    // The AoS equivalent — plain slice iteration over the materialized
    // events — bounds what the packed drain competes against.
    let aos_scan_secs = best_of(iters, || {
        for t in &traces {
            let mut n = 0usize;
            let mut cursor = EventSource::cursor(t);
            while let Some(chunk) = cursor.next_batch() {
                for &ev in chunk {
                    std::hint::black_box(&ev);
                    n += 1;
                }
            }
            assert_eq!(n, t.len());
        }
    });
    eprintln!(
        "[decode_throughput] drain: packed {drain_secs:.4} s ({:.0} M events/s), \
         aos scan {aos_scan_secs:.4} s ({:.0} M events/s)",
        total_events as f64 / drain_secs / 1e6,
        total_events as f64 / aos_scan_secs / 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"decode_throughput\",\n  \"scale\": \"{scale_name}\",\n  \
         \"workloads\": {},\n  \"iterations\": {iters},\n  \
         \"events\": {total_events},\n  \"lane_entries\": {total_entries},\n  \
         \"decode_scalar_seconds\": {scalar_secs:.6},\n  \
         \"decode_batched_seconds\": {batched_secs:.6},\n  \
         \"decode_routed_seconds\": {routed_secs:.6},\n  \
         \"decode_routed_speedup\": {:.3},\n  \
         \"decode_mentries_per_sec\": {:.1},\n  \
         \"drain_seconds\": {drain_secs:.6},\n  \
         \"drain_mevents_per_sec\": {:.1},\n  \
         \"aos_scan_seconds\": {aos_scan_secs:.6},\n  \"identical_lanes\": true\n}}\n",
        workloads.len(),
        scalar_secs / routed_secs,
        total_entries as f64 / routed_secs / 1e6,
        total_events as f64 / drain_secs / 1e6
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_decode.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[decode_throughput] wrote {}", path.display()),
        Err(e) => eprintln!("[decode_throughput] cannot write {}: {e}", path.display()),
    }
    print!("{json}");
}
