//! CLI driver for the append-only performance history
//! (`cbws_bench::perf_history`).
//!
//! ```text
//! perf-history record [--dir results/perf-history] [FILE...]
//! perf-history trends [--dir results/perf-history]
//! perf-history check  [--dir results/perf-history] [--k 3.0] [--warn-only]
//! ```
//!
//! `record` appends each `BENCH_*.json` snapshot (default: every
//! `perf_history::SNAPSHOT_FILES` entry present at the repository root) to
//! `results/perf-history/<bench>.jsonl`, stamped with the current git
//! revision and timestamp. `trends` prints the rolling mean/stddev of every
//! metric against the latest run. `check` exits non-zero when a hard-gated
//! wall-clock metric (see `perf_history::HARD_METRICS`) regresses beyond
//! `k` stddevs of its prior runs, or when an absolute gate on the latest
//! record fails (`replay_speedup >= 1.0`; single-worker
//! `engine_warm_seconds <= 1.02 x serial_seconds`; cached sweep
//! `engine_warm_seconds / engine_cached_seconds >= 3.0` — see
//! `perf_history::check_gates`); `--warn-only` downgrades failures to
//! warnings for hosts whose timings are known-noisy (e.g. single-core CI
//! runners). `--check` is accepted as an alias for the `check` subcommand.

use cbws_bench::perf_history::{
    self, append, benches_in, check, check_gates, git_rev, load, load_snapshot, snapshot_paths,
    trends, unix_time_now, DEFAULT_K,
};
use std::path::{Path, PathBuf};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: perf-history [record|trends|check|--check] \
         [--dir DIR] [--k K] [--warn-only] [FILE...]"
    );
    std::process::exit(2);
}

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut dir: Option<PathBuf> = None;
    let mut k = DEFAULT_K;
    let mut warn_only = false;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "record" | "trends" | "check" => {
                if mode.is_some() {
                    fail("more than one subcommand");
                }
                mode = Some(match arg.as_str() {
                    "record" => "record",
                    "trends" => "trends",
                    _ => "check",
                });
            }
            "--check" => mode = Some("check"),
            "--dir" => {
                dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--dir needs a path")),
                ))
            }
            "--k" => {
                k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--k needs a number"))
            }
            "--warn-only" => warn_only = true,
            other if !other.starts_with("--") => files.push(PathBuf::from(other)),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| repo_root().join("results/perf-history"));

    match mode.unwrap_or_else(|| fail("missing subcommand")) {
        "record" => {
            if files.is_empty() {
                files = snapshot_paths(repo_root());
                if files.is_empty() {
                    fail("no BENCH_*.json snapshots at the repository root and no FILE given");
                }
            }
            let rev = git_rev(repo_root());
            let now = unix_time_now();
            for file in &files {
                let record = load_snapshot(file, &rev, now).unwrap_or_else(|e| fail(&e));
                append(&dir, &record).unwrap_or_else(|e| fail(&e));
                println!(
                    "[perf-history] appended {} @ {rev} to {}",
                    record.bench,
                    record.path_in(&dir).display()
                );
            }
        }
        "trends" => {
            for bench in benches_in(&dir) {
                let history = load(&dir, &bench).unwrap_or_else(|e| fail(&e));
                println!("{bench} ({} runs):", history.len());
                for t in trends(&history) {
                    println!(
                        "  {:<24} latest {:>10.4}  mean {:>10.4} ± {:.4} over {} runs  ({:+.1}%)",
                        t.metric,
                        t.latest,
                        t.mean,
                        t.stddev,
                        t.prior_runs,
                        t.delta_fraction() * 100.0
                    );
                }
            }
        }
        "check" => {
            let found = check(&dir, k).unwrap_or_else(|e| fail(&e));
            let mut hard_failures = 0;
            for r in &found {
                let spread = r
                    .trend
                    .stddev
                    .max(perf_history::NOISE_FLOOR_FRACTION * r.trend.mean);
                let kind = if r.hard && !warn_only { "FAIL" } else { "warn" };
                if r.hard && !warn_only {
                    hard_failures += 1;
                }
                println!(
                    "[perf-history] {kind}: {}/{} latest {:.4} > mean {:.4} + {k} x {:.4} \
                     ({} prior runs, {:+.1}%)",
                    r.bench,
                    r.trend.metric,
                    r.trend.latest,
                    r.trend.mean,
                    spread,
                    r.trend.prior_runs,
                    r.trend.delta_fraction() * 100.0
                );
            }
            let gates = check_gates(&dir).unwrap_or_else(|e| fail(&e));
            for g in &gates {
                let kind = if warn_only { "warn" } else { "FAIL" };
                if !warn_only {
                    hard_failures += 1;
                }
                println!("[perf-history] {kind}: {} gate: {}", g.bench, g.message);
            }
            if found.is_empty() && gates.is_empty() {
                println!(
                    "[perf-history] check passed: no {k}-sigma regressions, \
                     absolute gates hold"
                );
            }
            if hard_failures > 0 {
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
