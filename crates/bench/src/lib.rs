#![warn(missing_docs)]

//! Shared helpers for the Criterion benches that regenerate the paper's
//! tables and figures on reduced (`Scale::Tiny`) workloads.
//!
//! Each bench target in `benches/` corresponds to one experiment id of
//! DESIGN.md §6; `cargo bench` therefore doubles as a smoke-run of the full
//! evaluation pipeline. For paper-scale numbers use the `cbws-harness`
//! binaries at `--scale full`.

use cbws_harness::experiments;
use cbws_harness::{PrefetcherKind, Simulator, SystemConfig};
use cbws_stats::RunRecord;
use cbws_workloads::{by_name, Scale, WorkloadSpec};

pub mod perf_history;

/// Resolves a workload by name, panicking with a clear message.
///
/// # Panics
///
/// Panics if the workload is not registered.
pub fn workload(name: &str) -> &'static WorkloadSpec {
    by_name(name).unwrap_or_else(|| panic!("workload {name} not registered"))
}

/// Runs the (workloads x all-prefetchers) sweep at Tiny scale.
pub fn tiny_sweep(names: &[&str]) -> Vec<RunRecord> {
    let picks: Vec<&'static WorkloadSpec> = names.iter().map(|n| workload(n)).collect();
    experiments::sweep(Scale::Tiny, &picks)
}

/// Runs one (workload, prefetcher) simulation at the given scale.
pub fn run_one(name: &str, scale: Scale, kind: PrefetcherKind) -> RunRecord {
    let trace = workload(name).generate(scale);
    Simulator::new(SystemConfig::default()).run(name, true, &trace, kind)
}

/// A small representative subset of the MI suite used by the per-figure
/// benches (keeps `cargo bench` minutes, not hours).
pub const REPRESENTATIVE: [&str; 6] = [
    "stencil-default",
    "sgemm-medium",
    "histo-large",
    "401.bzip2-source",
    "fft-simlarge",
    "nw",
];
