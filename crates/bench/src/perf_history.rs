//! Append-only performance history with regression gating.
//!
//! Each `BENCH_*.json` snapshot at the repository root records one run of a
//! wall-clock benchmark, but a single snapshot cannot say whether 0.64 s is
//! normal or a regression. This module turns those snapshots into an
//! auditable trend: every recorded run is appended — with its git revision,
//! core count, and timestamp — as one JSON line in
//! `results/perf-history/<bench>.jsonl`, and `check` compares the latest
//! run of each time-like metric against the rolling mean/stddev of the
//! runs before it.
//!
//! # Gating policy
//!
//! A metric regresses when
//!
//! ```text
//! latest > mean + k * max(stddev, NOISE_FLOOR_FRACTION * mean)
//! ```
//!
//! over the prior runs. The floor keeps a history of near-identical timings
//! (stddev ≈ 0) from flagging sub-percent jitter. Only metrics whose name
//! ends in `_seconds` are gated (they are the "lower is better" wall
//! clocks); of those, only [`HARD_METRICS`] fail the check — the rest warn.
//! `engine_warm_seconds` is the hard gate because the warm-store engine
//! sweep is the steady state CI and developers actually wait on, and it is
//! the least noisy of the recorded clocks (no DSL generation, no file
//! writes).
//!
//! On top of the rolling gate, [`check_gates`] pins four absolute
//! invariants on the *latest* record regardless of history: replaying
//! straight from the stored packed trace must stay at least as fast as
//! materializing the AoS vector and replaying that
//! (`replay_speedup >=` [`REPLAY_SPEEDUP_FLOOR`]); disk-backed streamed
//! replay must hold [`STREAM_THROUGHPUT_FLOOR`] of warm in-memory replay
//! throughput; a single-worker engine sweep must stay within
//! [`SINGLE_WORKER_OVERHEAD_CEILING`]` * serial_seconds`; and a sweep
//! served from the persistent result store must beat the warm engine
//! sweep by [`CACHED_SWEEP_SPEEDUP_FLOOR`]`x`. The batched lane decoder,
//! the read-ahead file cursor, the engine fast path, and the
//! content-addressed result store established those bounds, and ratio
//! gates hold across hosts where a wall-clock mean would not.
//!
//! The driver is the `perf-history` binary; see its module docs for the
//! CLI. Snapshot parsing is shared through [`load_snapshot`] /
//! [`snapshot_paths`] so the CLI's `record` mode and docgen's book pages
//! read `BENCH_*.json` identically. The generated book's "Performance
//! trends" page renders the same history via [`trends`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Default regression threshold in stddev multiples.
pub const DEFAULT_K: f64 = 3.0;

/// Relative noise floor substituted for the stddev when the history is
/// tighter than this fraction of the mean (guards against near-zero
/// stddev flagging jitter).
pub const NOISE_FLOOR_FRACTION: f64 = 0.02;

/// Metrics whose regression fails `check` (everything else `_seconds`
/// only warns).
pub const HARD_METRICS: &[&str] = &["engine_warm_seconds"];

/// Minimum prior runs before a metric is gated at all.
pub const MIN_HISTORY: usize = 3;

/// Floor on the `trace_replay` bench's `replay_speedup`
/// (materialize-then-replay AoS seconds / direct packed replay seconds).
/// Traces live packed in the store, so the engine's choice is direct
/// cursor replay versus decoding to a `Vec<TraceEvent>` first; if the
/// cursor ever loses that end-to-end race, direct packed replay is the
/// wrong default and this gate says so. (The pure replay-kernel ratio
/// with both representations pre-materialized is published alongside as
/// `replay_kernel_ratio`, ungated: slice intake is nearly free, so it
/// sits a little under 1.0 by the cost of real decode work.)
pub const REPLAY_SPEEDUP_FLOOR: f64 = 1.0;

/// Ceiling on `engine_warm_seconds / serial_seconds` when the recorded
/// sweep ran with one worker: the engine's single-worker fast path bounds
/// scheduler overhead at 2% of the serial loop. Multi-worker records skip
/// this gate — their ratio measures parallel speedup, which is
/// host-dependent.
pub const SINGLE_WORKER_OVERHEAD_CEILING: f64 = 1.02;

/// Floor on `engine_warm_seconds / engine_cached_seconds` for sweep
/// records that publish both: a full-matrix sweep served entirely from
/// the persistent result store skips trace loading *and* simulation per
/// job, so it must beat the warm engine sweep (which still simulates
/// every job from stored traces) by at least this factor. A miss means
/// the store's verify-and-load path got slower than simulating — the
/// cache stopped paying for itself.
pub const CACHED_SWEEP_SPEEDUP_FLOOR: f64 = 3.0;

/// Floor on the `stream_replay` bench's `stream_throughput_ratio` (warm
/// in-memory replay seconds / streamed replay seconds). The disk-backed
/// cursor pays for open + validation + per-frame decode with no resident
/// frames to lean on, but the read-ahead thread must keep it within 30%
/// of the in-memory path — otherwise streaming is too slow to be the
/// default above the byte threshold, and the bound that makes `huge`
/// traces replayable has quietly rotted.
pub const STREAM_THROUGHPUT_FLOOR: f64 = 0.7;

/// The benchmark snapshot files committed at the repository root, in
/// recording order.
pub const SNAPSHOT_FILES: &[&str] = &[
    "BENCH_sweep.json",
    "BENCH_trace.json",
    "BENCH_decode.json",
    "BENCH_stream.json",
];

/// One recorded benchmark run: the numeric metrics of a `BENCH_*.json`
/// snapshot plus the provenance that makes the line auditable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Benchmark id (`"sweep_e2e"`, `"trace_replay"`).
    pub bench: String,
    /// `git rev-parse --short HEAD` at record time, or `"unknown"`.
    pub git_rev: String,
    /// Host cores at record time (context for wall clocks).
    pub cores: usize,
    /// Seconds since the Unix epoch at record time.
    pub unix_time: u64,
    /// Workload scale the benchmark ran at.
    pub scale: String,
    /// Every numeric field of the snapshot, by name.
    pub metrics: BTreeMap<String, f64>,
}

impl PerfRecord {
    /// Parses one `BENCH_*.json` snapshot into a record. Numeric fields
    /// become metrics; strings, booleans, arrays, and nested objects are
    /// provenance or detail, not trend series, and are skipped.
    pub fn from_bench_json(
        json: &str,
        git_rev: &str,
        unix_time: u64,
    ) -> Result<PerfRecord, String> {
        let value: serde::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let obj = value.as_object().ok_or("snapshot is not a JSON object")?;
        let field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("snapshot has no string field `{name}`"))
        };
        let mut metrics = BTreeMap::new();
        let mut cores = 0usize;
        for (key, v) in obj {
            if key.as_str() == "cores" {
                cores = v.as_u64().unwrap_or(0) as usize;
                continue;
            }
            if let Some(n) = v.as_f64() {
                metrics.insert(key.clone(), n);
            }
        }
        Ok(PerfRecord {
            bench: field("bench")?,
            git_rev: git_rev.to_string(),
            cores,
            unix_time,
            scale: field("scale")?,
            metrics,
        })
    }

    /// The history file this record appends to under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.jsonl", self.bench))
    }
}

/// The [`SNAPSHOT_FILES`] that exist under `root`.
pub fn snapshot_paths(root: &Path) -> Vec<PathBuf> {
    SNAPSHOT_FILES
        .iter()
        .map(|name| root.join(name))
        .filter(|p| p.exists())
        .collect()
}

/// Reads and parses one `BENCH_*.json` snapshot file into a
/// [`PerfRecord`] — the one loader shared by the `perf-history record`
/// CLI and docgen's generated book pages, so snapshot parsing cannot
/// drift between them.
pub fn load_snapshot(path: &Path, git_rev: &str, unix_time: u64) -> Result<PerfRecord, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    PerfRecord::from_bench_json(&json, git_rev, unix_time)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Appends `record` as one JSON line to `dir/<bench>.jsonl`, creating the
/// directory as needed.
pub fn append(dir: &Path, record: &PerfRecord) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let line = serde_json::to_string(record).map_err(|e| e.to_string())?;
    let path = record.path_in(dir);
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("cannot append to {}: {e}", path.display()))
}

/// Loads one benchmark's history (oldest first). A missing file is an
/// empty history; a corrupt line is an error — history is an audit trail,
/// so silent skips would hide tampering or tooling bugs.
pub fn load(dir: &Path, bench: &str) -> Result<Vec<PerfRecord>, String> {
    let path = dir.join(format!("{bench}.jsonl"));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))
        })
        .collect()
}

/// Benchmark names present in `dir` (sorted).
pub fn benches_in(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().into_string().ok()?;
                    name.strip_suffix(".jsonl").map(str::to_string)
                })
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// Rolling statistics of one metric across a history, with the latest run
/// split out for comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Metric name (`"engine_warm_seconds"`).
    pub metric: String,
    /// Runs contributing to `mean`/`stddev` (all but the latest).
    pub prior_runs: usize,
    /// Mean over the prior runs.
    pub mean: f64,
    /// Population stddev over the prior runs.
    pub stddev: f64,
    /// The latest run's value.
    pub latest: f64,
}

impl Trend {
    /// `latest` as a signed fraction of `mean` (+0.08 = 8% above mean);
    /// 0 when the mean is 0.
    pub fn delta_fraction(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.latest / self.mean - 1.0
        }
    }

    /// Whether the latest value regresses past `k` stddevs (with the
    /// [`NOISE_FLOOR_FRACTION`] floor) above the prior mean. Only
    /// meaningful for "lower is better" metrics; callers filter to
    /// `*_seconds` names.
    pub fn regressed(&self, k: f64) -> bool {
        if self.prior_runs < MIN_HISTORY {
            return false;
        }
        let spread = self.stddev.max(NOISE_FLOOR_FRACTION * self.mean);
        self.latest > self.mean + k * spread
    }
}

/// Per-metric trends of a history (every metric of the latest record that
/// also appears in at least one prior record). Empty when the history has
/// fewer than two runs.
pub fn trends(history: &[PerfRecord]) -> Vec<Trend> {
    let Some((latest, prior)) = history.split_last() else {
        return Vec::new();
    };
    if prior.is_empty() {
        return Vec::new();
    }
    latest
        .metrics
        .iter()
        .filter_map(|(name, &value)| {
            let series: Vec<f64> = prior
                .iter()
                .filter_map(|r| r.metrics.get(name).copied())
                .collect();
            if series.is_empty() {
                return None;
            }
            let n = series.len() as f64;
            let mean = series.iter().sum::<f64>() / n;
            let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            Some(Trend {
                metric: name.clone(),
                prior_runs: series.len(),
                mean,
                stddev: var.sqrt(),
                latest: value,
            })
        })
        .collect()
}

/// One gate violation found by [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The benchmark the metric belongs to.
    pub bench: String,
    /// The regressed trend.
    pub trend: Trend,
    /// Whether this metric is in [`HARD_METRICS`] (fails the check) or
    /// only warns.
    pub hard: bool,
}

/// Checks every history in `dir` at threshold `k`: each `*_seconds` metric
/// of each latest run is compared against its prior mean/stddev. Returns
/// all violations, hard and soft.
pub fn check(dir: &Path, k: f64) -> Result<Vec<Regression>, String> {
    let mut out = Vec::new();
    for bench in benches_in(dir) {
        let history = load(dir, &bench)?;
        for trend in trends(&history) {
            if !trend.metric.ends_with("_seconds") {
                continue;
            }
            if trend.regressed(k) {
                let hard = HARD_METRICS.contains(&trend.metric.as_str());
                out.push(Regression {
                    bench: bench.clone(),
                    trend,
                    hard,
                });
            }
        }
    }
    Ok(out)
}

/// One absolute-gate violation found by [`check_gates`]. Absolute gates
/// are always hard: they pin invariants an optimization established, so a
/// miss means the optimization stopped working, not that the host was
/// slow that day.
#[derive(Debug, Clone, PartialEq)]
pub struct GateViolation {
    /// The benchmark whose latest record violated the gate.
    pub bench: String,
    /// Human-readable statement of the violated bound, with values.
    pub message: String,
}

/// Applies the absolute gates to the **latest** record of each history in
/// `dir` (no prior runs needed, unlike [`check`]):
///
/// - `trace_replay`: `replay_speedup >=` [`REPLAY_SPEEDUP_FLOOR`].
/// - `stream_replay`: `stream_throughput_ratio >=`
///   [`STREAM_THROUGHPUT_FLOOR`].
/// - `sweep_e2e` recorded at `workers == 1`:
///   `engine_warm_seconds <=` [`SINGLE_WORKER_OVERHEAD_CEILING`]
///   `* serial_seconds`.
///
/// Records missing the gated metrics are skipped — the gates constrain
/// benchmarks that publish them, they don't require every bench to.
pub fn check_gates(dir: &Path) -> Result<Vec<GateViolation>, String> {
    let mut out = Vec::new();
    for bench in benches_in(dir) {
        let history = load(dir, &bench)?;
        let Some(latest) = history.last() else {
            continue;
        };
        let metric = |name: &str| latest.metrics.get(name).copied();
        if let Some(speedup) = metric("replay_speedup") {
            if speedup < REPLAY_SPEEDUP_FLOOR {
                out.push(GateViolation {
                    bench: bench.clone(),
                    message: format!(
                        "replay_speedup {speedup:.3} < floor {REPLAY_SPEEDUP_FLOOR} \
                         (direct packed replay slower than materialize-then-replay AoS)"
                    ),
                });
            }
        }
        if let Some(ratio) = metric("stream_throughput_ratio") {
            if ratio < STREAM_THROUGHPUT_FLOOR {
                out.push(GateViolation {
                    bench: bench.clone(),
                    message: format!(
                        "stream_throughput_ratio {ratio:.3} < floor {STREAM_THROUGHPUT_FLOOR} \
                         (disk-backed streamed replay fell behind warm in-memory replay)"
                    ),
                });
            }
        }
        if let (Some(workers), Some(warm), Some(serial)) = (
            metric("workers"),
            metric("engine_warm_seconds"),
            metric("serial_seconds"),
        ) {
            if workers == 1.0 && serial > 0.0 && warm > SINGLE_WORKER_OVERHEAD_CEILING * serial {
                out.push(GateViolation {
                    bench: bench.clone(),
                    message: format!(
                        "engine_warm_seconds {warm:.4} > {SINGLE_WORKER_OVERHEAD_CEILING} x \
                         serial_seconds {serial:.4} at workers=1 \
                         (single-worker fast path overhead above 2%)"
                    ),
                });
            }
        }
        if let (Some(warm), Some(cached)) = (
            metric("engine_warm_seconds"),
            metric("engine_cached_seconds"),
        ) {
            if cached > 0.0 && warm / cached < CACHED_SWEEP_SPEEDUP_FLOOR {
                out.push(GateViolation {
                    bench: bench.clone(),
                    message: format!(
                        "engine_warm_seconds {warm:.4} / engine_cached_seconds {cached:.4} = \
                         {:.2} < floor {CACHED_SWEEP_SPEEDUP_FLOOR} \
                         (result-store sweep no longer beats re-simulation)",
                        warm / cached
                    ),
                });
            }
        }
    }
    Ok(out)
}

/// `git rev-parse --short HEAD` of the working tree containing `dir`, or
/// `"unknown"` when git is unavailable (history stays appendable without
/// provenance rather than failing the run).
pub fn git_rev(dir: &Path) -> String {
    std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch, saturating at 0 on a pre-1970 clock.
pub fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, warm: f64, serial: f64) -> PerfRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("engine_warm_seconds".into(), warm);
        metrics.insert("serial_seconds".into(), serial);
        metrics.insert("speedup".into(), serial / warm);
        PerfRecord {
            bench: bench.into(),
            git_rev: "abc1234".into(),
            cores: 8,
            unix_time: 1_700_000_000,
            scale: "small".into(),
            metrics,
        }
    }

    #[test]
    fn bench_json_parses_numeric_fields_only() {
        let json = r#"{"bench":"sweep_e2e","scale":"small","cores":4,
            "engine_warm_seconds":0.63,"identical_records":true,
            "note":"text","workers_detail":[{"worker":0}]}"#;
        let r = PerfRecord::from_bench_json(json, "deadbee", 42).unwrap();
        assert_eq!(r.bench, "sweep_e2e");
        assert_eq!(r.scale, "small");
        assert_eq!(r.cores, 4);
        assert_eq!(r.git_rev, "deadbee");
        assert_eq!(r.unix_time, 42);
        assert_eq!(r.metrics.len(), 1);
        assert!((r.metrics["engine_warm_seconds"] - 0.63).abs() < 1e-12);
    }

    #[test]
    fn trends_split_latest_from_prior() {
        let history: Vec<PerfRecord> = [0.60, 0.62, 0.61, 0.70]
            .iter()
            .map(|&w| record("sweep_e2e", w, 1.0))
            .collect();
        let t = trends(&history);
        let warm = t
            .iter()
            .find(|t| t.metric == "engine_warm_seconds")
            .unwrap();
        assert_eq!(warm.prior_runs, 3);
        assert!((warm.mean - 0.61).abs() < 1e-9);
        assert!((warm.latest - 0.70).abs() < 1e-12);
        assert!(warm.delta_fraction() > 0.14);
    }

    #[test]
    fn short_history_never_regresses() {
        let history: Vec<PerfRecord> = [0.6, 60.0].iter().map(|&w| record("b", w, 1.0)).collect();
        let t = trends(&history);
        let warm = t
            .iter()
            .find(|t| t.metric == "engine_warm_seconds")
            .unwrap();
        assert!(!warm.regressed(DEFAULT_K), "1 prior run must not gate");
    }

    #[test]
    fn noise_floor_absorbs_tiny_jitter() {
        // Identical history → stddev 0; a 1% bump must NOT regress (floor
        // is 2% of mean × k), but a 10% bump must.
        let mut history: Vec<PerfRecord> = (0..4).map(|_| record("b", 0.600, 1.0)).collect();
        history.push(record("b", 0.606, 1.0));
        let warm = |h: &[PerfRecord]| {
            trends(h)
                .into_iter()
                .find(|t| t.metric == "engine_warm_seconds")
                .unwrap()
        };
        assert!(!warm(&history).regressed(DEFAULT_K));
        *history.last_mut().unwrap() = record("b", 0.660, 1.0);
        assert!(warm(&history).regressed(DEFAULT_K));
    }

    #[test]
    fn append_load_check_round_trip() {
        let dir = std::env::temp_dir().join(format!("cbws-perf-history-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for w in [0.60, 0.62, 0.61, 0.62] {
            append(&dir, &record("sweep_e2e", w, 1.0)).unwrap();
        }
        assert_eq!(benches_in(&dir), vec!["sweep_e2e".to_string()]);
        let history = load(&dir, "sweep_e2e").unwrap();
        assert_eq!(history.len(), 4);
        assert!(
            check(&dir, DEFAULT_K).unwrap().is_empty(),
            "steady history passes"
        );

        // Inject a 30% warm-path regression: check must flag it as hard.
        append(&dir, &record("sweep_e2e", 0.80, 1.0)).unwrap();
        let found = check(&dir, DEFAULT_K).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].trend.metric, "engine_warm_seconds");
        assert!(found[0].hard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn replay_record(speedup: f64) -> PerfRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("replay_speedup".into(), speedup);
        metrics.insert("replay_packed_seconds".into(), 0.02 / speedup);
        PerfRecord {
            bench: "trace_replay".into(),
            git_rev: "abc1234".into(),
            cores: 1,
            unix_time: 1_700_000_000,
            scale: "small".into(),
            metrics,
        }
    }

    fn sweep_record(workers: f64, warm: f64, serial: f64) -> PerfRecord {
        let mut r = record("sweep_e2e", warm, serial);
        r.metrics.insert("workers".into(), workers);
        r
    }

    #[test]
    fn replay_speedup_floor_gates_only_the_latest_record() {
        let dir = std::env::temp_dir().join(format!("cbws-gate-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // An old below-floor record followed by a passing one: clean.
        append(&dir, &replay_record(0.89)).unwrap();
        append(&dir, &replay_record(1.12)).unwrap();
        assert!(check_gates(&dir).unwrap().is_empty());
        // A new below-floor record trips the gate with no history needed.
        append(&dir, &replay_record(0.97)).unwrap();
        let found = check_gates(&dir).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].bench, "trace_replay");
        assert!(found[0].message.contains("replay_speedup 0.970"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_worker_overhead_ceiling_skips_parallel_sweeps() {
        let dir = std::env::temp_dir().join(format!("cbws-gate-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Within 2% of serial at one worker: clean.
        append(&dir, &sweep_record(1.0, 1.01, 1.0)).unwrap();
        assert!(check_gates(&dir).unwrap().is_empty());
        // 5% over at one worker: violation.
        append(&dir, &sweep_record(1.0, 1.05, 1.0)).unwrap();
        let found = check_gates(&dir).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("workers=1"));
        // Same ratio at four workers measures parallel speedup, not fast
        // path overhead: skipped.
        append(&dir, &sweep_record(4.0, 1.05, 1.0)).unwrap();
        assert!(check_gates(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gates_skip_benches_without_the_gated_metrics() {
        let dir = std::env::temp_dir().join(format!("cbws-gate-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        append(&dir, &record("decode_throughput", 0.5, 1.0)).unwrap();
        // `record` has engine_warm_seconds/serial_seconds but no `workers`
        // metric, so the ratio gate cannot apply; neither can the replay
        // floor or the cached-sweep floor (no engine_cached_seconds).
        // Empty dirs are clean too.
        assert!(check_gates(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn stream_record(ratio: f64) -> PerfRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("stream_throughput_ratio".into(), ratio);
        metrics.insert("replay_stream_seconds".into(), 0.05 / ratio);
        PerfRecord {
            bench: "stream_replay".into(),
            git_rev: "abc1234".into(),
            cores: 1,
            unix_time: 1_700_000_000,
            scale: "small".into(),
            metrics,
        }
    }

    #[test]
    fn stream_throughput_floor_gates_only_the_latest_record() {
        let dir = std::env::temp_dir().join(format!("cbws-gate-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // An old below-floor record superseded by a passing one: clean.
        append(&dir, &stream_record(0.55)).unwrap();
        append(&dir, &stream_record(0.92)).unwrap();
        assert!(check_gates(&dir).unwrap().is_empty());
        // A fresh record under the 0.7 floor trips the gate immediately.
        append(&dir, &stream_record(0.64)).unwrap();
        let found = check_gates(&dir).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].bench, "stream_replay");
        assert!(found[0].message.contains("stream_throughput_ratio 0.640"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn cached_sweep_record(warm: f64, cached: f64) -> PerfRecord {
        let mut r = record("sweep_e2e", warm, warm);
        r.metrics.insert("engine_cached_seconds".into(), cached);
        r.metrics.insert("cached_speedup".into(), warm / cached);
        r
    }

    #[test]
    fn cached_sweep_floor_gates_only_the_latest_record() {
        let dir = std::env::temp_dir().join(format!("cbws-gate-cached-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // 5x over the warm sweep: clean (and the old sub-floor record
        // below does not resurrect once superseded).
        append(&dir, &cached_sweep_record(1.0, 0.4)).unwrap();
        append(&dir, &cached_sweep_record(1.0, 0.2)).unwrap();
        assert!(check_gates(&dir).unwrap().is_empty());
        // Latest record at 2.5x — under the 3x floor — trips the gate.
        append(&dir, &cached_sweep_record(1.0, 0.4)).unwrap();
        let found = check_gates(&dir).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].bench, "sweep_e2e");
        assert!(found[0].message.contains("engine_cached_seconds"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_loader_reads_bench_json_and_skips_missing_files() {
        let root = std::env::temp_dir().join(format!("cbws-snapshot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        assert!(snapshot_paths(&root).is_empty(), "no snapshots yet");
        std::fs::write(
            root.join("BENCH_sweep.json"),
            r#"{"bench":"sweep_e2e","scale":"small","cores":2,
                "engine_warm_seconds":0.5,"engine_cached_seconds":0.1}"#,
        )
        .unwrap();
        let paths = snapshot_paths(&root);
        assert_eq!(paths, vec![root.join("BENCH_sweep.json")]);
        let r = load_snapshot(&paths[0], "deadbee", 42).unwrap();
        assert_eq!(r.bench, "sweep_e2e");
        assert_eq!(r.cores, 2);
        assert!((r.metrics["engine_cached_seconds"] - 0.1).abs() < 1e-12);
        let err = load_snapshot(&root.join("BENCH_trace.json"), "deadbee", 42).unwrap_err();
        assert!(err.contains("BENCH_trace.json"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
