//! Property tests for the core timing model's global invariants.

use cbws_sim_cpu::{Core, CoreConfig, IdealMemory, MemResult, MemSystem};
use cbws_trace::{Addr, BlockId, MemAccess, Pc, Trace, TraceBuilder};
use proptest::prelude::*;

/// A memory with a programmable latency per access index (deterministic).
struct ScriptedMemory {
    latencies: Vec<u64>,
    cursor: usize,
}

impl MemSystem for ScriptedMemory {
    fn access(&mut self, _now: u64, _access: &MemAccess) -> MemResult {
        let latency = self.latencies[self.cursor % self.latencies.len()];
        self.cursor += 1;
        MemResult {
            latency,
            l1_hit: latency <= 2,
        }
    }
}

/// A random but structurally valid trace.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..1 << 18).prop_map(|a| (0u8, a)),
            (0u64..1 << 18).prop_map(|a| (1u8, a)),
            (1u64..8).prop_map(|n| (2u8, n)),
            (0u64..2).prop_map(|t| (3u8, t)),
            Just((4u8, 0u64)),
        ],
        1..120,
    )
    .prop_map(|ops| {
        let mut b = TraceBuilder::new();
        let mut in_block = false;
        for (kind, v) in ops {
            match kind {
                0 => b.load(Pc(0x10), Addr(v * 64)),
                1 => b.store(Pc(0x14), Addr(v * 64)),
                2 => b.alu(Pc(0x18), v as u32),
                3 => b.branch(Pc(0x1c), v == 1),
                _ => {
                    if in_block {
                        b.end_block(BlockId(0));
                    } else {
                        b.begin_block(BlockId(0));
                    }
                    in_block = !in_block;
                }
            }
        }
        if in_block {
            b.end_block(BlockId(0));
        }
        b.finish()
    })
}

proptest! {
    /// IPC can never exceed the machine width, and cycles are at least
    /// instructions / width.
    #[test]
    fn ipc_bounded_by_width(trace in trace_strategy(), lat in 1u64..400) {
        let cfg = CoreConfig::default();
        let stats = Core::new(cfg).run(&trace, &mut IdealMemory { latency: lat });
        prop_assert!(stats.ipc() <= f64::from(cfg.width) + 1e-9, "ipc = {}", stats.ipc());
        if stats.instructions > 0 {
            prop_assert!(stats.cycles >= stats.instructions / u64::from(cfg.width));
        }
    }

    /// Monotonicity: uniformly slower memory never reduces total cycles.
    #[test]
    fn cycles_monotone_in_latency(trace in trace_strategy()) {
        let fast = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: 2 });
        let slow = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: 200 });
        prop_assert!(slow.cycles >= fast.cycles, "{} < {}", slow.cycles, fast.cycles);
    }

    /// A narrower machine is never faster.
    #[test]
    fn cycles_monotone_in_width(trace in trace_strategy()) {
        let wide = CoreConfig { width: 4, ..CoreConfig::default() };
        let narrow = CoreConfig { width: 1, ..CoreConfig::default() };
        let w = Core::new(wide).run(&trace, &mut IdealMemory { latency: 2 });
        let n = Core::new(narrow).run(&trace, &mut IdealMemory { latency: 2 });
        prop_assert!(n.cycles >= w.cycles);
    }

    /// A smaller ROB is never faster.
    #[test]
    fn cycles_monotone_in_rob(trace in trace_strategy()) {
        let big = CoreConfig { rob_entries: 128, ..CoreConfig::default() };
        let small = CoreConfig { rob_entries: 4, ..CoreConfig::default() };
        let b = Core::new(big).run(&trace, &mut ScriptedMemory { latencies: vec![2, 300, 30], cursor: 0 });
        let s = Core::new(small).run(&trace, &mut ScriptedMemory { latencies: vec![2, 300, 30], cursor: 0 });
        prop_assert!(s.cycles >= b.cycles);
    }

    /// Block cycles never exceed total cycles, and instruction accounting
    /// matches the trace exactly.
    #[test]
    fn accounting_invariants(trace in trace_strategy(), lat in 1u64..350) {
        let stats = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: lat });
        let ts = trace.stats();
        prop_assert_eq!(stats.instructions, ts.instructions);
        prop_assert_eq!(stats.mem_accesses, ts.mem_accesses);
        prop_assert!(stats.loop_cycle_fraction() <= 1.0);
        prop_assert!(stats.mispredictions <= stats.branches);
    }
}
