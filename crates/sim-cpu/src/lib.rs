#![warn(missing_docs)]

//! Approximate out-of-order core timing model for the CBWS reproduction.
//!
//! This crate is the stand-in for the paper's gem5 CPU model (Table II: a
//! 2 GHz, 4-wide out-of-order core with a 128-entry ROB, 32-entry load and
//! store queues, and a tournament branch predictor). See [`Core`] for the
//! modelling contract and its documented approximations.
//!
//! The core walks a committed-instruction [`cbws_trace::Trace`] and charges
//! cycles against a [`MemSystem`] — either a bare
//! [`cbws_sim_mem::MemoryHierarchy`] (no prefetching) or the harness's
//! prefetcher-wired implementation.
//!
//! # Example
//!
//! ```
//! use cbws_sim_cpu::{Core, CoreConfig};
//! use cbws_sim_mem::{MemoryHierarchy, HierarchyConfig};
//! use cbws_trace::{TraceBuilder, Pc, Addr};
//!
//! let mut b = TraceBuilder::new();
//! for i in 0..100u64 {
//!     b.load(Pc(0x10), Addr(i * 64));
//!     b.alu(Pc(0x14), 3);
//! }
//! let trace = b.finish();
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let stats = Core::new(CoreConfig::default()).run(&trace, &mut mem);
//! assert!(stats.ipc() > 0.0);
//! ```

mod branch;
mod config;
mod core;

pub use crate::core::{Core, CpuStats, IdealMemory, MemResult, MemSystem};
pub use branch::TournamentPredictor;
pub use config::CoreConfig;
