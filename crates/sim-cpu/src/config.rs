//! Core configuration (the CPU column of Table II).

use serde::{Deserialize, Serialize};

/// Parameters of the approximate out-of-order core model.
///
/// Defaults reproduce Table II of the paper: a 2 GHz, 4-wide OoO core with a
/// 128-entry ROB and 32-entry load/store queues, and a tournament branch
/// predictor with 4K entries and 11 bits of history. The misprediction
/// penalty is not listed in the paper; 15 cycles is a conventional value for
/// a core of this depth and is an explicit knob here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue/commit width in instructions per cycle.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub ldq_entries: usize,
    /// Store-queue entries.
    pub stq_entries: usize,
    /// Maximum simultaneously-outstanding L1 demand misses (L1 MSHRs).
    pub l1_mshrs: usize,
    /// Pipeline-flush penalty on a branch misprediction, in cycles.
    pub mispredict_penalty: u64,
    /// Branch-predictor entries (per table).
    pub bp_entries: usize,
    /// Global-history length in bits.
    pub bp_history_bits: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 4,
            rob_entries: 128,
            ldq_entries: 32,
            stq_entries: 32,
            l1_mshrs: 4,
            mispredict_penalty: 15,
            bp_entries: 4096,
            bp_history_bits: 11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.ldq_entries, 32);
        assert_eq!(c.stq_entries, 32);
        assert_eq!(c.l1_mshrs, 4);
        assert_eq!(c.bp_entries, 4096);
        assert_eq!(c.bp_history_bits, 11);
    }
}
