//! Tournament branch predictor (Table II: 4K entries, 11-bit history),
//! after Yeh & Patt two-level prediction with a McFarling-style chooser.

use cbws_trace::Pc;
use serde::{Deserialize, Serialize};

/// A saturating 2-bit counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    fn weakly_taken() -> Self {
        Counter2(2)
    }
}

/// Tournament predictor: a PC-indexed local two-level predictor and a gshare
/// global predictor, arbitrated by a chooser table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    local_history: Vec<u16>,
    local_ctrs: Vec<Counter2>,
    global_ctrs: Vec<Counter2>,
    chooser: Vec<Counter2>,
    global_history: u64,
    history_mask: u64,
    entries_mask: usize,
    predictions: u64,
    mispredictions: u64,
}

impl TournamentPredictor {
    /// Creates a predictor with `entries` counters per table (rounded up to
    /// a power of two) and `history_bits` of global/local history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `history_bits` exceeds 16.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        assert!(
            history_bits <= 16,
            "history wider than 16 bits is unsupported"
        );
        let n = entries.next_power_of_two();
        TournamentPredictor {
            local_history: vec![0; n],
            local_ctrs: vec![Counter2::weakly_taken(); n],
            global_ctrs: vec![Counter2::weakly_taken(); n],
            chooser: vec![Counter2::weakly_taken(); n],
            global_history: 0,
            history_mask: (1u64 << history_bits) - 1,
            entries_mask: n - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn pc_index(&self, pc: Pc) -> usize {
        // Drop the low 2 bits (instruction alignment) before indexing.
        (pc.0 >> 2) as usize & self.entries_mask
    }

    fn local_index(&self, pc: Pc) -> usize {
        let hist = self.local_history[self.pc_index(pc)] as usize;
        (hist ^ (pc.0 >> 2) as usize) & self.entries_mask
    }

    fn global_index(&self, pc: Pc) -> usize {
        ((self.global_history ^ (pc.0 >> 2)) as usize) & self.entries_mask
    }

    /// Predicts the direction of the branch at `pc`, then trains all tables
    /// with the actual `taken` outcome. Returns `true` if the prediction was
    /// correct.
    pub fn predict_and_train(&mut self, pc: Pc, taken: bool) -> bool {
        let li = self.local_index(pc);
        let gi = self.global_index(pc);
        let ci = self.pc_index(pc);

        let local_pred = self.local_ctrs[li].taken();
        let global_pred = self.global_ctrs[gi].taken();
        let use_global = self.chooser[ci].taken();
        let pred = if use_global { global_pred } else { local_pred };

        // Train the chooser toward whichever component was right (only when
        // they disagree).
        if local_pred != global_pred {
            self.chooser[ci].update(global_pred == taken);
        }
        self.local_ctrs[li].update(taken);
        self.global_ctrs[gi].update(taken);

        let pci = self.pc_index(pc);
        self.local_history[pci] =
            (((self.local_history[pci] as u64) << 1 | u64::from(taken)) & self.history_mask) as u16;
        self.global_history = (self.global_history << 1 | u64::from(taken)) & self.history_mask;

        self.predictions += 1;
        let correct = pred == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in 0..=1 (0 when no predictions were made).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

impl Default for TournamentPredictor {
    fn default() -> Self {
        TournamentPredictor::new(4096, 11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2(0);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.0, 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.0, 0);
    }

    #[test]
    fn learns_always_taken() {
        let mut p = TournamentPredictor::default();
        let pc = Pc(0x400);
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict_and_train(pc, true) {
                correct += 1;
            }
        }
        assert!(
            correct >= 98,
            "always-taken should be near-perfect, got {correct}"
        );
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // Taken 7 times then not-taken, repeated: a tight loop of 8
        // iterations. History-based prediction should learn the exit.
        let mut p = TournamentPredictor::default();
        let pc = Pc(0x500);
        let mut late_correct = 0;
        let mut total_late = 0;
        for rep in 0..200 {
            for i in 0..8 {
                let taken = i != 7;
                let ok = p.predict_and_train(pc, taken);
                if rep >= 100 {
                    total_late += 1;
                    if ok {
                        late_correct += 1;
                    }
                }
            }
        }
        let rate = late_correct as f64 / total_late as f64;
        assert!(rate > 0.9, "loop pattern should be learned, rate = {rate}");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = TournamentPredictor::default();
        let pc = Pc(0x600);
        // Pseudo-random (LCG) outcomes: should hover near 50% accuracy.
        let mut x: u64 = 12345;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.predict_and_train(pc, (x >> 63) != 0);
        }
        let rate = p.misprediction_rate();
        assert!(
            rate > 0.3,
            "random stream should mispredict frequently, rate = {rate}"
        );
    }

    #[test]
    fn stats_counters() {
        let mut p = TournamentPredictor::default();
        for i in 0..10 {
            p.predict_and_train(Pc(i * 4), i % 2 == 0);
        }
        assert_eq!(p.predictions(), 10);
        assert!(p.mispredictions() <= 10);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        TournamentPredictor::new(0, 11);
    }
}
