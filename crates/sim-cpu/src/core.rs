//! The approximate out-of-order core timing model.
//!
//! # Modelling contract
//!
//! The model is trace-driven: it walks committed instructions in program
//! order and computes, per instruction, a *dispatch* time (front-end,
//! width-limited, stalled by ROB/LDQ/STQ occupancy and branch flushes) and a
//! *completion* time (dispatch + latency). Commit is in order. This
//! preserves the first-order effects a prefetcher study depends on:
//!
//! * the width-limited CPI floor,
//! * memory-level parallelism bounded by the ROB window, the LDQ, and the
//!   L1 MSHRs,
//! * serialization of dependent (pointer-chasing) loads,
//! * branch-misprediction flushes, and
//! * in-order commit, which is the order in which the CBWS hardware observes
//!   memory accesses (paper §V-B).
//!
//! It deliberately does not model renaming, functional-unit contention
//! beyond width, or wrong-path fetches. A documented approximation: a load
//! that misses when all L1 MSHRs are busy still *probes* the hierarchy at
//! its dispatch time but its completion is pushed back until an MSHR frees.

use crate::branch::TournamentPredictor;
use crate::config::CoreConfig;
use cbws_sim_mem::MemoryHierarchy;
use cbws_telemetry::Telemetry;
use cbws_trace::{BlockId, Dependence, EventCursor, EventSource, MemAccess, MemKind, TraceEvent};
use serde::{Deserialize, Serialize};

/// Result of one memory access as seen by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResult {
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Whether the access hit in the L1 (misses occupy an L1 MSHR).
    pub l1_hit: bool,
}

/// The core's view of the memory system.
///
/// The harness implements this by wiring a [`MemoryHierarchy`] to a
/// prefetcher; the trivial impl for a bare [`MemoryHierarchy`] runs without
/// prefetching. The block hooks exist so prefetchers that consume the
/// paper's `BLOCK_BEGIN`/`BLOCK_END` instructions see them in commit order
/// with timestamps.
pub trait MemSystem {
    /// Performs a demand access at cycle `now`.
    fn access(&mut self, now: u64, access: &MemAccess) -> MemResult;

    /// A `BLOCK_BEGIN(id)` instruction committed at cycle `now`.
    fn block_begin(&mut self, _now: u64, _id: BlockId) {}

    /// A `BLOCK_END(id)` instruction committed at cycle `now`.
    fn block_end(&mut self, _now: u64, _id: BlockId) {}
}

impl MemSystem for MemoryHierarchy {
    fn access(&mut self, now: u64, access: &MemAccess) -> MemResult {
        let out = self.demand_access(now, access.addr, access.kind.is_store());
        MemResult {
            latency: out.latency,
            l1_hit: out.l1_hit,
        }
    }
}

/// An ideal memory that services every access in a fixed latency; useful for
/// tests and for isolating front-end behaviour.
#[derive(Debug, Clone, Copy)]
pub struct IdealMemory {
    /// Fixed latency returned for every access.
    pub latency: u64,
}

impl MemSystem for IdealMemory {
    fn access(&mut self, _now: u64, _access: &MemAccess) -> MemResult {
        MemResult {
            latency: self.latency,
            l1_hit: true,
        }
    }
}

/// Timing statistics produced by [`Core::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Total cycles to commit the trace.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed memory accesses.
    pub mem_accesses: u64,
    /// Committed branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
    /// Cycles spent between `BLOCK_BEGIN` and `BLOCK_END` (tight loops);
    /// numerator of the paper's Fig. 1.
    pub block_cycles: u64,
}

impl CpuStats {
    /// Instructions per cycle. Returns 0 for an empty run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles spent inside annotated tight loops (Fig. 1),
    /// clamped to 1.
    pub fn loop_cycle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.block_cycles as f64 / self.cycles as f64).min(1.0)
        }
    }
}

/// Bounded FIFO of completion times modelling a queue resource (ROB, LDQ,
/// STQ, MSHRs): dispatch of a new occupant stalls until the oldest entry
/// completes when the queue is full.
///
/// Implemented as a fixed circular buffer sized exactly to the resource:
/// the one allocation happens at construction, so the commit loop — which
/// exercises these queues on every event — never touches the allocator and
/// never pays `VecDeque`'s growth or spill checks.
#[derive(Debug, Clone)]
struct OccupancyQueue {
    times: Box<[u64]>,
    head: usize,
    len: usize,
}

impl OccupancyQueue {
    fn new(cap: usize) -> Self {
        OccupancyQueue {
            times: vec![0; cap.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn wrap(&self, i: usize) -> usize {
        // Capacities are resource sizes, not powers of two; a compare beats
        // a modulo here.
        if i >= self.times.len() {
            i - self.times.len()
        } else {
            i
        }
    }

    #[inline]
    fn pop_front(&mut self) -> u64 {
        debug_assert!(self.len > 0);
        let oldest = self.times[self.head];
        self.head = self.wrap(self.head + 1);
        self.len -= 1;
        oldest
    }

    /// Earliest time a new entry may be allocated if dispatch happens at `t`.
    #[inline]
    fn allocate(&mut self, t: u64) -> u64 {
        if self.len == self.times.len() {
            let oldest = self.pop_front();
            t.max(oldest)
        } else {
            t
        }
    }

    #[inline]
    fn push(&mut self, completion: u64) {
        debug_assert!(self.len < self.times.len());
        let tail = self.wrap(self.head + self.len);
        self.times[tail] = completion;
        self.len += 1;
    }

    /// Drops entries already completed by time `t` (keeps the queue short).
    #[inline]
    fn retire_until(&mut self, t: u64) {
        while self.len > 0 && self.times[self.head] <= t {
            self.head = self.wrap(self.head + 1);
            self.len -= 1;
        }
    }
}

/// The approximate out-of-order core.
///
/// ```
/// use cbws_sim_cpu::{Core, CoreConfig, IdealMemory};
/// use cbws_trace::{TraceBuilder, Pc};
///
/// let mut b = TraceBuilder::new();
/// b.alu(Pc(0), 400);
/// let trace = b.finish();
/// let stats = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: 2 });
/// // A pure-ALU trace commits at full width (IPC ~ 4).
/// assert!(stats.ipc() > 3.5);
/// ```
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    predictor: TournamentPredictor,
    telemetry: Telemetry,
}

impl Core {
    /// Creates a core with a fresh branch predictor.
    pub fn new(cfg: CoreConfig) -> Self {
        let predictor = TournamentPredictor::new(cfg.bp_entries, cfg.bp_history_bits);
        Core {
            cfg,
            predictor,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink; [`Core::run`] then reports a progress
    /// heartbeat while walking the trace. The default is a disabled sink.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

impl cbws_describe::Describe for Core {
    fn describe(&self) -> cbws_describe::ComponentDescription {
        use cbws_describe::{ComponentDescription, ComponentKind, MetricSpec, ParamSpec};
        let c = &self.cfg;
        ComponentDescription::new(
            "OoO core",
            ComponentKind::CpuModel,
            "Approximate out-of-order core standing in for gem5 (Table II): \
             width-limited commit, ROB/LDQ/STQ-bounded memory parallelism, \
             dependent-load serialization, a tournament branch predictor with \
             a fixed flush penalty, and in-order commit. Preserves the \
             first-order effects a prefetcher study needs; see DESIGN.md §2 \
             for the substitution argument.",
        )
        .paper_section("§VI, Table II (simulated system)")
        .param(ParamSpec::new(
            "width",
            "issue/commit width in instructions per cycle (Table II: 4)",
            c.width.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "rob_entries",
            "reorder-buffer entries (Table II: 128)",
            c.rob_entries.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "ldq_entries",
            "load-queue entries (Table II: 32)",
            c.ldq_entries.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "stq_entries",
            "store-queue entries (Table II: 32)",
            c.stq_entries.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "l1_mshrs",
            "maximum simultaneously-outstanding L1 demand misses",
            c.l1_mshrs.to_string(),
            "≥ 1",
        ))
        .param(ParamSpec::new(
            "mispredict_penalty",
            "pipeline-flush penalty on a branch misprediction, in cycles \
             (unspecified in the paper; 15 here)",
            c.mispredict_penalty.to_string(),
            "≥ 0",
        ))
        .param(ParamSpec::new(
            "bp_entries",
            "branch-predictor entries per table (Table II: 4K tournament)",
            c.bp_entries.to_string(),
            "power of two",
        ))
        .param(ParamSpec::new(
            "bp_history_bits",
            "global-history length in bits (Table II: 11)",
            c.bp_history_bits.to_string(),
            "≥ 1",
        ))
        .metric(MetricSpec::gauge(
            "run.ipc",
            "committed instructions per cycle (exported per run by the harness)",
        ))
        .metric(MetricSpec::gauge("run.cycles", "simulated cycles per run"))
        .metric(MetricSpec::gauge(
            "run.instructions",
            "committed instructions per run",
        ))
        .metric(MetricSpec::gauge(
            "run.branch_mispredictions",
            "branch mispredictions per run",
        ))
        .metric(MetricSpec::gauge(
            "run.loop_cycle_fraction",
            "fraction of cycles spent inside annotated blocks (Fig. 1)",
        ))
    }
}

impl Core {
    /// Runs `trace` to completion against `mem` and returns timing stats.
    ///
    /// Generic over the trace representation: a materialized
    /// [`cbws_trace::Trace`] and a columnar [`cbws_trace::PackedTrace`]
    /// replay identically (the packed cursor decodes events on the fly).
    ///
    /// The core state (branch predictor) is trained across the run; create a
    /// fresh [`Core`] for an independent experiment.
    pub fn run<S: EventSource + ?Sized>(
        &mut self,
        trace: &S,
        mem: &mut impl MemSystem,
    ) -> CpuStats {
        let _span = self.telemetry.span("core.run");
        let cfg = self.cfg;
        let mut stats = CpuStats::default();

        // Front end: `front_cycle` is the cycle of the next dispatch slot;
        // `front_subslot` counts instructions already dispatched that cycle.
        let mut front_cycle: u64 = 0;
        let mut front_subslot: u32 = 0;

        let mut rob = OccupancyQueue::new(cfg.rob_entries.max(1));
        let mut ldq = OccupancyQueue::new(cfg.ldq_entries.max(1));
        let mut stq = OccupancyQueue::new(cfg.stq_entries.max(1));
        let mut mshrs = OccupancyQueue::new(cfg.l1_mshrs.max(1));

        // In-order commit frontier.
        let mut last_commit: u64 = 0;
        // Completion of the most recent load, for dependent addressing.
        let mut last_load_complete: u64 = 0;
        // Commit frontier at the current block's `BLOCK_BEGIN`; block time
        // is measured on the commit timeline so stalls caused by in-block
        // instructions are attributed to the loop (Fig. 1).
        let mut block_start: Option<u64> = None;

        let dispatch = |front_cycle: &mut u64, front_subslot: &mut u32| -> u64 {
            let t = *front_cycle;
            *front_subslot += 1;
            if *front_subslot >= cfg.width {
                *front_cycle += 1;
                *front_subslot = 0;
            }
            t
        };
        let stall_until = |front_cycle: &mut u64, front_subslot: &mut u32, t: u64| {
            if t > *front_cycle {
                *front_cycle = t;
                *front_subslot = 0;
            }
        };

        let total_events = trace.event_count() as u64;
        // The hot loop pulls contiguous chunks so its inner loop is plain
        // slice iteration for every representation: a materialized trace
        // hands over its whole event slice, a packed trace each decoded
        // batch. Keeping the per-event body textually inside this loop
        // (rather than behind a callback) is load-bearing: the body holds
        // ~15 hot locals in registers across events, which the optimizer
        // only sustains when the loop and body are one function.
        let mut cursor = trace.cursor();
        let mut i: u64 = 0;
        while let Some(chunk) = cursor.next_batch() {
            for &event in chunk {
                // Heartbeat sampling is sparse so the disabled-telemetry
                // cost stays one branch per 64K events.
                if i & 0xFFFF == 0 && self.telemetry.is_enabled() {
                    self.telemetry.progress(i, total_events);
                }
                i += 1;
                match event {
                    TraceEvent::Alu { count, .. } => {
                        for _ in 0..count {
                            let t0 = dispatch(&mut front_cycle, &mut front_subslot);
                            let t = rob.allocate(t0);
                            stall_until(&mut front_cycle, &mut front_subslot, t);
                            let complete = t + 1;
                            last_commit = last_commit.max(complete);
                            rob.push(last_commit);
                            stats.instructions += 1;
                        }
                    }
                    TraceEvent::Mem(m) => {
                        let t0 = dispatch(&mut front_cycle, &mut front_subslot);
                        let mut t = rob.allocate(t0);
                        stall_until(&mut front_cycle, &mut front_subslot, t);
                        if m.dep == Dependence::PrevLoad {
                            t = t.max(last_load_complete);
                        }
                        let complete = match m.kind {
                            MemKind::Load => {
                                t = ldq.allocate(t);
                                let r = mem.access(t, &m);
                                let done = if r.l1_hit {
                                    t + r.latency
                                } else {
                                    // L1 miss: wait for a free MSHR, then the
                                    // full latency applies.
                                    let issue = mshrs.allocate(t);
                                    let done = issue + r.latency;
                                    mshrs.push(done);
                                    done
                                };
                                ldq.push(done);
                                last_load_complete = done;
                                done
                            }
                            MemKind::Store => {
                                t = stq.allocate(t);
                                let r = mem.access(t, &m);
                                // The store buffer hides the store's latency from
                                // commit, but the STQ entry is held until the
                                // write completes.
                                stq.push(t + r.latency);
                                t + 1
                            }
                        };
                        last_commit = last_commit.max(complete);
                        rob.push(last_commit);
                        stats.instructions += 1;
                        stats.mem_accesses += 1;
                        mshrs.retire_until(t);
                    }
                    TraceEvent::Branch(br) => {
                        let t0 = dispatch(&mut front_cycle, &mut front_subslot);
                        let t = rob.allocate(t0);
                        stall_until(&mut front_cycle, &mut front_subslot, t);
                        let correct = self.predictor.predict_and_train(br.pc, br.taken);
                        let complete = t + 1;
                        if !correct {
                            stats.mispredictions += 1;
                            // Redirect: the front end resumes after the flush.
                            stall_until(
                                &mut front_cycle,
                                &mut front_subslot,
                                complete + cfg.mispredict_penalty,
                            );
                        }
                        last_commit = last_commit.max(complete);
                        rob.push(last_commit);
                        stats.instructions += 1;
                        stats.branches += 1;
                    }
                    TraceEvent::BlockBegin { id } => {
                        let t0 = dispatch(&mut front_cycle, &mut front_subslot);
                        let t = rob.allocate(t0);
                        stall_until(&mut front_cycle, &mut front_subslot, t);
                        mem.block_begin(t, id);
                        last_commit = last_commit.max(t + 1);
                        block_start = Some(last_commit);
                        rob.push(last_commit);
                        stats.instructions += 1;
                    }
                    TraceEvent::BlockEnd { id } => {
                        let t0 = dispatch(&mut front_cycle, &mut front_subslot);
                        let t = rob.allocate(t0);
                        stall_until(&mut front_cycle, &mut front_subslot, t);
                        mem.block_end(t, id);
                        last_commit = last_commit.max(t + 1);
                        if let Some(start) = block_start.take() {
                            stats.block_cycles += last_commit.saturating_sub(start);
                        }
                        rob.push(last_commit);
                        stats.instructions += 1;
                    }
                }
            }
        }

        stats.cycles = last_commit.max(front_cycle);
        stats.branches = stats.branches.max(self.predictor.predictions());
        stats
    }

    /// Branch predictor statistics accumulated so far.
    pub fn predictor(&self) -> &TournamentPredictor {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbws_sim_mem::HierarchyConfig;
    use cbws_trace::{Addr, Pc, Trace, TraceBuilder};

    fn alu_trace(n: u32) -> Trace {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0), n);
        b.finish()
    }

    #[test]
    fn alu_trace_runs_at_width() {
        let stats =
            Core::new(CoreConfig::default()).run(&alu_trace(4000), &mut IdealMemory { latency: 2 });
        assert_eq!(stats.instructions, 4000);
        let ipc = stats.ipc();
        assert!(ipc > 3.5 && ipc <= 4.0, "ipc = {ipc}");
    }

    #[test]
    fn width_one_runs_at_one() {
        let cfg = CoreConfig {
            width: 1,
            ..CoreConfig::default()
        };
        let stats = Core::new(cfg).run(&alu_trace(1000), &mut IdealMemory { latency: 2 });
        let ipc = stats.ipc();
        assert!(ipc <= 1.0 && ipc > 0.9, "ipc = {ipc}");
    }

    #[test]
    fn independent_misses_overlap() {
        // 8 independent loads to distinct lines: with 4 MSHRs they should
        // overlap substantially rather than serialize at 332 cycles each.
        let mut b = TraceBuilder::new();
        for i in 0..8u64 {
            b.load(Pc(0x100), Addr(i * 4096));
        }
        let trace = b.finish();
        let mut mem = cbws_sim_mem::MemoryHierarchy::new(HierarchyConfig::default());
        let stats = Core::new(CoreConfig::default()).run(&trace, &mut mem);
        assert!(stats.cycles < 8 * 332, "no MLP: {} cycles", stats.cycles);
        assert!(
            stats.cycles >= 2 * 332,
            "more MLP than 4 MSHRs allow: {}",
            stats.cycles
        );
    }

    #[test]
    fn dependent_loads_serialize() {
        // 8 dependent loads must serialize: ~8 * full-miss latency.
        let mut b = TraceBuilder::new();
        b.load(Pc(0x100), Addr(0));
        for i in 1..8u64 {
            b.load_dep(Pc(0x100), Addr(i * 4096));
        }
        let trace = b.finish();
        let mut mem = cbws_sim_mem::MemoryHierarchy::new(HierarchyConfig::default());
        let stats = Core::new(CoreConfig::default()).run(&trace, &mut mem);
        assert!(
            stats.cycles >= 8 * 332,
            "dependent loads overlapped: {}",
            stats.cycles
        );
    }

    #[test]
    fn rob_limits_window() {
        // With a 1-entry ROB everything serializes, even ideal memory.
        let cfg = CoreConfig {
            rob_entries: 1,
            ..CoreConfig::default()
        };
        let stats = Core::new(cfg).run(&alu_trace(100), &mut IdealMemory { latency: 2 });
        assert!(stats.ipc() <= 1.0, "ipc = {}", stats.ipc());
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // Alternating-direction branch at one PC is learnable; a pseudo-random
        // one is not. Compare cycle counts.
        let mut well = TraceBuilder::new();
        let mut badly = TraceBuilder::new();
        let mut x: u64 = 99;
        for i in 0..2000 {
            well.branch(Pc(0x40), true);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            badly.branch(Pc(0x40), (x >> 63) != 0);
            let _ = i;
        }
        let w =
            Core::new(CoreConfig::default()).run(&well.finish(), &mut IdealMemory { latency: 2 });
        let b =
            Core::new(CoreConfig::default()).run(&badly.finish(), &mut IdealMemory { latency: 2 });
        assert!(
            b.cycles > w.cycles * 3,
            "mispredict penalty missing: well={} badly={}",
            w.cycles,
            b.cycles
        );
        assert!(b.mispredictions > 500);
    }

    #[test]
    fn block_cycle_accounting() {
        let mut b = TraceBuilder::new();
        b.alu(Pc(0), 100); // outside
        b.annotated_loop(cbws_trace::BlockId(0), 10, |b, _| {
            b.alu(Pc(4), 100);
        });
        let trace = b.finish();
        let stats = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: 2 });
        let frac = stats.loop_cycle_fraction();
        assert!(frac > 0.8 && frac <= 1.0, "frac = {frac}");
    }

    #[test]
    fn stores_do_not_block_commit() {
        // Stores retire through the store buffer: a stream of store misses
        // should commit far faster than the same stream of load misses.
        let mut ld = TraceBuilder::new();
        let mut st = TraceBuilder::new();
        for i in 0..64u64 {
            ld.load(Pc(0), Addr(i * 4096));
            ld.load_dep(Pc(4), Addr(i * 4096 + 1024 * 1024));
            st.store(Pc(0), Addr(i * 4096));
            st.store(Pc(4), Addr(i * 4096 + 1024 * 1024));
        }
        let mut m1 = cbws_sim_mem::MemoryHierarchy::new(HierarchyConfig::default());
        let mut m2 = cbws_sim_mem::MemoryHierarchy::new(HierarchyConfig::default());
        let l = Core::new(CoreConfig::default()).run(&ld.finish(), &mut m1);
        let s = Core::new(CoreConfig::default()).run(&st.finish(), &mut m2);
        assert!(
            s.cycles < l.cycles,
            "stores should hide latency: {} vs {}",
            s.cycles,
            l.cycles
        );
    }

    #[test]
    fn cycles_monotone_in_memory_latency() {
        let mut b = TraceBuilder::new();
        for i in 0..200u64 {
            b.load(Pc(0), Addr(i * 4096));
            b.alu(Pc(4), 3);
        }
        let trace = b.finish();
        let fast = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: 2 });
        let slow = Core::new(CoreConfig::default()).run(&trace, &mut IdealMemory { latency: 50 });
        assert!(slow.cycles > fast.cycles);
    }

    #[test]
    fn empty_trace_is_zero() {
        let stats = Core::new(CoreConfig::default())
            .run(&Trace::default(), &mut IdealMemory { latency: 2 });
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.loop_cycle_fraction(), 0.0);
    }
}
