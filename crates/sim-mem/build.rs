//! Build-time kernel selection for the wide tag-probe path.
//!
//! The `simd` cargo feature opts in to the 4-wide unrolled tag compare in
//! `cache.rs`; this script additionally checks that the target has native
//! 64-bit words, so the u64x4-style scan only compiles where the backend
//! can keep a whole chunk in vector registers, and everything else falls
//! back to the scalar scan. The selected kernel is exposed to the crate
//! as the `cbws_wide_probe` cfg; both kernels return identical results
//! (property-tested in `tests/probe_properties.rs`), so the choice never
//! affects simulation output.

fn main() {
    println!("cargo:rustc-check-cfg=cfg(cbws_wide_probe)");
    let simd = std::env::var_os("CARGO_FEATURE_SIMD").is_some();
    let width = std::env::var("CARGO_CFG_TARGET_POINTER_WIDTH").unwrap_or_default();
    if simd && width == "64" {
        println!("cargo:rustc-cfg=cbws_wide_probe");
    }
    println!("cargo:rerun-if-changed=build.rs");
}
