//! Hierarchy configuration (Table II of the paper).

use crate::dram::DramConfig;
use cbws_trace::LINE_BYTES;
use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways per set).
    pub assoc: usize,
    /// Access latency in cycles.
    pub latency: u64,
    /// Miss status holding registers (outstanding-miss limit).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity smaller
    /// than one set).
    pub fn sets(&self) -> usize {
        assert!(self.assoc > 0, "associativity must be non-zero");
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines as usize / self.assoc;
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }
}

/// Full hierarchy configuration.
///
/// Defaults reproduce Table II: 32 KB 4-way 2-cycle L1D with 4 MSHRs,
/// 2 MB 8-way 30-cycle inclusive L2 with 32 MSHRs, 300-cycle memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified, inclusive L2.
    pub l2: CacheConfig,
    /// Main memory latency in cycles (Table II's flat 300-cycle model;
    /// ignored when [`HierarchyConfig::dram`] is set).
    pub memory_latency: u64,
    /// Optional banked-DRAM timing below the L2 (see
    /// [`crate::MemoryModel::Dram`]); `None` keeps the paper's flat model.
    pub dram: Option<DramConfig>,
    /// L2 MSHRs reserved for demand misses; prefetches may occupy at most
    /// `l2.mshrs - demand_reserved_mshrs` slots. The paper's L1 allows only
    /// 4 outstanding demand misses, so reserving 4 keeps demand unblocked.
    pub demand_reserved_mshrs: usize,
    /// Capacity of the prefetch request queue; requests beyond this are
    /// dropped oldest-first (and counted in [`crate::MemStats`]).
    pub prefetch_queue_capacity: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                latency: 2,
                mshrs: 4,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 8,
                latency: 30,
                mshrs: 32,
            },
            memory_latency: 300,
            dram: None,
            demand_reserved_mshrs: 4,
            prefetch_queue_capacity: 64,
        }
    }
}

impl HierarchyConfig {
    /// Maximum number of prefetches allowed in flight simultaneously.
    pub fn prefetch_mshrs(&self) -> usize {
        self.l2.mshrs.saturating_sub(self.demand_reserved_mshrs)
    }

    /// Latency of a demand access that hits in the L1.
    pub fn l1_hit_latency(&self) -> u64 {
        self.l1d.latency
    }

    /// Latency of a demand access that hits in the L2.
    pub fn l2_hit_latency(&self) -> u64 {
        self.l1d.latency + self.l2.latency
    }

    /// Nominal latency of a demand access that misses everywhere (exact
    /// under the flat model; the unqueued row-miss case under DRAM).
    pub fn full_miss_latency(&self) -> u64 {
        self.l1d.latency + self.l2.latency + self.memory_model().nominal_latency()
    }

    /// The memory model implied by `dram`/`memory_latency`.
    pub fn memory_model(&self) -> crate::MemoryModel {
        match self.dram {
            Some(d) => crate::MemoryModel::Dram(d),
            None => crate::MemoryModel::Flat {
                latency: self.memory_latency,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1d.sets(), 128); // 32KB / (64B * 4 ways)
        assert_eq!(c.l2.sets(), 4096); // 2MB / (64B * 8 ways)
        assert_eq!(c.l1d.lines(), 512);
        assert_eq!(c.l2.lines(), 32768);
        assert_eq!(c.full_miss_latency(), 332);
        assert_eq!(c.l2_hit_latency(), 32);
        assert_eq!(c.l1_hit_latency(), 2);
        assert_eq!(c.prefetch_mshrs(), 28);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheConfig {
            size_bytes: 3 * 64 * 4,
            assoc: 4,
            latency: 1,
            mshrs: 1,
        }
        .sets();
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_rejected() {
        CacheConfig {
            size_bytes: 1024,
            assoc: 0,
            latency: 1,
            mshrs: 1,
        }
        .sets();
    }
}
