#![warn(missing_docs)]

//! Memory-hierarchy substrate for the CBWS reproduction.
//!
//! Implements the two-level cache hierarchy of Table II of the paper:
//! a 32 KB 4-way L1D (2-cycle, 4 MSHRs) backed by a 2 MB 8-way *inclusive*
//! L2 (30-cycle, 32 MSHRs) and a flat 300-cycle main memory. Prefetchers
//! fill into the L2, as in the paper (§VI).
//!
//! The hierarchy is *functionally timed*: each demand access is performed at
//! a caller-supplied cycle `now` and returns its latency plus a
//! classification of how prefetching affected it. Overlap between demand
//! misses is the job of the CPU timing model (`cbws-sim-cpu`); the hierarchy
//! itself tracks prefetch in-flight state against the L2 MSHR budget.
//!
//! Per-line prefetch metadata implements the 5-way timeliness/accuracy
//! taxonomy of Srinath et al. used by the paper's Fig. 13:
//! *timely*, *shorter-waiting-time*, *non-timely*, *missing*, and *wrong*.
//!
//! # Example
//!
//! ```
//! use cbws_sim_mem::{MemoryHierarchy, HierarchyConfig};
//! use cbws_trace::{Addr, LineAddr};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! // A cold demand miss goes all the way to memory.
//! let out = mem.demand_access(0, Addr(0x10000), false);
//! assert_eq!(out.latency, 2 + 30 + 300);
//! // Prefetch the next line, let it land, then access it: timely hit.
//! mem.enqueue_prefetch(0, Addr(0x10040).line());
//! let out = mem.demand_access(1000, Addr(0x10040), false);
//! assert_eq!(out.latency, 2 + 30);
//! ```

mod cache;
mod config;
mod dram;
mod hierarchy;
mod stats;

pub use cache::{Cache, EvictedLine, PrefetchMeta};
pub use config::{CacheConfig, HierarchyConfig};
pub use dram::{DramConfig, MainMemory, MemoryModel};
pub use hierarchy::{AccessOutcome, DemandClass, MemoryHierarchy};
pub use stats::MemStats;
