//! Counters collected by the memory hierarchy.

use cbws_trace::LINE_BYTES;
use serde::{Deserialize, Serialize};

/// Event counters for one simulation run of the memory hierarchy.
///
/// The five classification counters (`timely`, `shorter_waiting_time`,
/// `non_timely`, `missing`, `wrong`) implement the taxonomy of the paper's
/// Fig. 13. The first four classify *demand L2 accesses*; `wrong` counts
/// prefetched lines that were never demand-referenced and is therefore
/// "beyond 100%" when scaled to demand accesses, exactly as the paper plots
/// it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand accesses presented to the L1D.
    pub l1_accesses: u64,
    /// Demand accesses that hit in the L1D.
    pub l1_hits: u64,
    /// Demand accesses that reached the L2 (i.e. L1 misses).
    pub l2_demand_accesses: u64,
    /// Demand L2 accesses that hit on a line *not* installed by a prefetch
    /// (or already demand-referenced earlier).
    pub plain_hits: u64,
    /// Demand L2 accesses that hit, for the first time, on a line installed
    /// by a completed prefetch: the miss was eliminated.
    pub timely: u64,
    /// Demand L2 accesses that found their line still in flight from a
    /// prefetch: latency was reduced but not eliminated.
    pub shorter_waiting_time: u64,
    /// Demand L2 accesses whose line sat in the prefetch queue, identified
    /// but not yet issued.
    pub non_timely: u64,
    /// Demand L2 accesses with no prefetch involvement: a plain miss.
    pub missing: u64,
    /// Prefetched lines never demand-referenced before eviction / end of
    /// simulation: wasted bandwidth and cache space.
    pub wrong: u64,
    /// Prefetch requests accepted into the queue.
    pub prefetch_enqueued: u64,
    /// Prefetch requests dropped because the target line was already
    /// resident, queued, or in flight.
    pub prefetch_dedup_dropped: u64,
    /// Prefetch requests dropped due to queue overflow.
    pub prefetch_overflow_dropped: u64,
    /// Prefetches actually issued to memory.
    pub prefetch_issued: u64,
    /// Prefetch fills that completed into the L2.
    pub prefetch_fills: u64,
    /// Demand fills from memory into the L2.
    pub demand_fills: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Demand-fetched L2 lines evicted by a *prefetch* fill — the cache
    /// pollution an over-aggressive prefetcher causes (§II's argument for
    /// why static prefetchers must stay conservative outside loops).
    pub pollution_evictions: u64,
}

impl MemStats {
    /// Demand L2 misses for MPKI purposes (Fig. 12): accesses for which no
    /// fill was underway — `missing` plus `non_timely`. An access that
    /// merges into an in-flight prefetch is an MSHR hit, not a new LLC
    /// miss, in gem5's accounting; its residual latency still shows up in
    /// IPC (and in Fig. 13's *shorter-waiting-time* class).
    pub fn l2_misses(&self) -> u64 {
        self.missing + self.non_timely
    }

    /// Demand L2 hits (plain, prefetch-eliminated, and in-flight merges).
    pub fn l2_hits(&self) -> u64 {
        self.plain_hits + self.timely + self.shorter_waiting_time
    }

    /// Total bytes read from main memory (demand fills + prefetch fills).
    /// This is the denominator of the paper's Fig. 15 performance/cost
    /// metric.
    pub fn bytes_read(&self) -> u64 {
        (self.demand_fills + self.prefetch_fills) * LINE_BYTES
    }

    /// Total bytes written back to main memory.
    pub fn bytes_written(&self) -> u64 {
        self.writebacks * LINE_BYTES
    }

    /// Misses per kilo-instruction given a committed instruction count.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn mpki(&self, instructions: u64) -> f64 {
        assert!(
            instructions > 0,
            "MPKI requires a non-zero instruction count"
        );
        self.l2_misses() as f64 * 1000.0 / instructions as f64
    }

    /// Checks the classification partition invariant: every demand L2 access
    /// is classified exactly once.
    pub fn classification_is_partition(&self) -> bool {
        self.plain_hits + self.timely + self.shorter_waiting_time + self.non_timely + self.missing
            == self.l2_demand_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let s = MemStats {
            l2_demand_accesses: 10,
            plain_hits: 2,
            timely: 3,
            shorter_waiting_time: 1,
            non_timely: 1,
            missing: 3,
            demand_fills: 4,
            prefetch_fills: 6,
            writebacks: 2,
            ..Default::default()
        };
        assert_eq!(s.l2_misses(), 4);
        assert_eq!(s.l2_hits(), 6);
        assert!(s.classification_is_partition());
        assert_eq!(s.bytes_read(), 640);
        assert_eq!(s.bytes_written(), 128);
        assert!((s.mpki(1000) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn mpki_rejects_zero_instructions() {
        MemStats::default().mpki(0);
    }
}
