//! Main-memory timing models.
//!
//! The paper's Table II specifies a flat 300-cycle memory, which
//! [`MemoryModel::Flat`] reproduces and the hierarchy uses by default. The
//! optional [`MemoryModel::Dram`] model adds the two properties a flat
//! latency cannot express and that matter for prefetcher studies:
//!
//! * **bank-level bandwidth** — each request occupies its bank, so a
//!   wasteful prefetcher's wrong fetches queue behind (and delay) demand
//!   fills, making the Fig. 15 performance/cost trade-off physical;
//! * **row-buffer locality** — sequential streams hit open rows and
//!   complete faster than scattered accesses.
//!
//! The `dram_model` binary re-runs the headline comparison under both
//! models.

use cbws_trace::LineAddr;
use serde::{Deserialize, Serialize};

/// Parameters of the banked DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: usize,
    /// Row-buffer size in bytes (power of two).
    pub row_bytes: u64,
    /// Latency of a request hitting the open row, in cycles.
    pub row_hit: u64,
    /// Latency of a request that must activate a new row.
    pub row_miss: u64,
    /// Bank occupancy per request (inverse bandwidth), in cycles.
    pub bank_busy: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // Roughly DDR3-era numbers at a 2 GHz core clock.
        DramConfig {
            banks: 16,
            row_bytes: 8192,
            row_hit: 150,
            row_miss: 300,
            bank_busy: 24,
        }
    }
}

/// The memory-timing model used below the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryModel {
    /// Fixed latency, unlimited bandwidth (Table II's 300 cycles).
    Flat {
        /// Latency in cycles.
        latency: u64,
    },
    /// Banked DRAM with row buffers and per-bank occupancy.
    Dram(DramConfig),
}

impl MemoryModel {
    /// The nominal (worst-case single-request) latency, used for docs and
    /// for sizing the finish horizon.
    pub fn nominal_latency(&self) -> u64 {
        match self {
            MemoryModel::Flat { latency } => *latency,
            MemoryModel::Dram(d) => d.row_miss,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    next_free: u64,
    open_row: Option<u64>,
}

/// Stateful main-memory timing engine.
#[derive(Debug, Clone)]
pub struct MainMemory {
    model: MemoryModel,
    banks: Vec<Bank>,
    requests: u64,
    row_hits: u64,
}

impl MainMemory {
    /// Creates the engine for a model.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate DRAM geometry.
    pub fn new(model: MemoryModel) -> Self {
        let banks = match model {
            MemoryModel::Flat { .. } => Vec::new(),
            MemoryModel::Dram(d) => {
                assert!(d.banks > 0, "DRAM needs at least one bank");
                assert!(
                    d.row_bytes.is_power_of_two() && d.row_bytes >= 64,
                    "row size must be a power of two of at least one line"
                );
                assert!(
                    d.row_hit <= d.row_miss,
                    "row hit cannot be slower than a miss"
                );
                vec![
                    Bank {
                        next_free: 0,
                        open_row: None
                    };
                    d.banks
                ]
            }
        };
        MainMemory {
            model,
            banks,
            requests: 0,
            row_hits: 0,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &MemoryModel {
        &self.model
    }

    /// Issues a line fill at cycle `now`; returns its completion time.
    pub fn access(&mut self, now: u64, line: LineAddr) -> u64 {
        self.requests += 1;
        match self.model {
            MemoryModel::Flat { latency } => now + latency,
            MemoryModel::Dram(d) => {
                let row = line.base().0 / d.row_bytes;
                let bank = &mut self.banks[(row % d.banks as u64) as usize];
                let start = now.max(bank.next_free);
                let latency = if bank.open_row == Some(row) {
                    self.row_hits += 1;
                    d.row_hit
                } else {
                    d.row_miss
                };
                bank.open_row = Some(row);
                bank.next_free = start + d.bank_busy;
                start + latency
            }
        }
    }

    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Row-buffer hit rate in 0..=1 (always 0 for the flat model).
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> MainMemory {
        MainMemory::new(MemoryModel::Dram(DramConfig::default()))
    }

    #[test]
    fn flat_model_is_constant() {
        let mut m = MainMemory::new(MemoryModel::Flat { latency: 300 });
        assert_eq!(m.access(0, LineAddr(0)), 300);
        assert_eq!(m.access(5, LineAddr(999)), 305);
        assert_eq!(m.row_hit_rate(), 0.0);
    }

    #[test]
    fn row_hits_are_faster() {
        let mut m = dram();
        let first = m.access(0, LineAddr(0));
        // Next line in the same 8 KB row: row hit, but queued behind the
        // first request's bank occupancy.
        let second = m.access(0, LineAddr(1));
        assert_eq!(first, 300);
        assert_eq!(second, 24 + 150);
        assert!(m.row_hit_rate() > 0.0);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut m = dram();
        // Rows 0 and 1 map to different banks: both complete at 300.
        let a = m.access(0, LineAddr(0));
        let b = m.access(0, LineAddr(8192 / 64));
        assert_eq!(a, 300);
        assert_eq!(b, 300);
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut m = dram();
        let rows_per_cycle = 8192 / 64;
        // Row 0 and row 16 hit the same bank (16 banks): second queues.
        let a = m.access(0, LineAddr(0));
        let b = m.access(0, LineAddr(16 * rows_per_cycle));
        assert_eq!(a, 300);
        assert_eq!(b, 24 + 300, "row conflict: queued and misses the row");
    }

    #[test]
    fn row_conflict_closes_previous_row() {
        let mut m = dram();
        let rows_per_cycle = 8192 / 64;
        m.access(0, LineAddr(0));
        m.access(1000, LineAddr(16 * rows_per_cycle)); // same bank, new row
        let back = m.access(2000, LineAddr(1)); // row 0 again: miss now
        assert_eq!(back, 2000 + 300);
    }

    #[test]
    fn nominal_latencies() {
        assert_eq!(MemoryModel::Flat { latency: 300 }.nominal_latency(), 300);
        assert_eq!(
            MemoryModel::Dram(DramConfig::default()).nominal_latency(),
            300
        );
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        MainMemory::new(MemoryModel::Dram(DramConfig {
            banks: 0,
            ..DramConfig::default()
        }));
    }
}
