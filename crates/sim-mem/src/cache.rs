//! Set-associative cache with true-LRU replacement and per-line prefetch
//! metadata.

use crate::config::CacheConfig;
use cbws_trace::LineAddr;
use serde::{Deserialize, Serialize};

/// Metadata attached to a line that was installed by a prefetch.
///
/// Drives the paper's Fig. 13 classification: a prefetched line that is
/// evicted (or still resident at the end of simulation) without ever being
/// demand-referenced counts as a *wrong* prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchMeta {
    /// Cycle at which the prefetch was issued to memory.
    pub issue_time: u64,
    /// Cycle at which the fill completed.
    pub fill_time: u64,
    /// Whether a demand access has referenced the line since the fill.
    pub referenced: bool,
}

/// A line pushed out of the cache by an insertion or invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The victim's line address.
    pub line: LineAddr,
    /// Whether the victim was dirty (requires write-back).
    pub dirty: bool,
    /// Prefetch metadata if the victim was prefetched.
    pub prefetch: Option<PrefetchMeta>,
}

/// Per-way state that only matters once a probe has hit: LRU stamp, dirty
/// bit, prefetch metadata. Kept out of the tag array so set scans touch
/// none of it.
#[derive(Debug, Clone, Copy)]
struct WayMeta {
    dirty: bool,
    last_use: u64,
    prefetch: Option<PrefetchMeta>,
}

impl WayMeta {
    fn empty() -> Self {
        WayMeta {
            dirty: false,
            last_use: 0,
            prefetch: None,
        }
    }
}

/// A set-associative, true-LRU, write-back cache over line addresses.
///
/// Purely structural: it holds no data, only tags plus the dirty bit and
/// prefetch metadata needed by the evaluation.
///
/// ```
/// use cbws_sim_mem::{Cache, CacheConfig};
/// use cbws_trace::LineAddr;
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, assoc: 2, latency: 1, mshrs: 4 });
/// assert!(!c.touch(LineAddr(3), false));
/// c.insert(LineAddr(3), false, None);
/// assert!(c.touch(LineAddr(3), false));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// One packed tag per way, set-major: set `s` occupies
    /// `tags[s * assoc .. (s + 1) * assoc]`. A valid way stores
    /// `line << 1 | 1`, a free way stores `0`, so a probe is a single
    /// compare per way and an 8-way set scan reads 64 contiguous bytes —
    /// one host cache line — instead of walking interleaved metadata.
    tags: Box<[u64]>,
    /// Hit-path state for each way, parallel to `tags`.
    meta: Box<[WayMeta]>,
    assoc: usize,
    set_mask: u64,
    stamp: u64,
    resident: usize,
}

/// Packed tag of a resident `line` (see `Cache::tags`).
#[inline]
fn valid_tag(line: LineAddr) -> u64 {
    (line.0 << 1) | 1
}

/// Scalar scan of a set's contiguous tag lane for `want` (a packed valid
/// tag, or `0` to find a free way). Default kernel; the `simd` feature
/// swaps in the wide scan below with identical results.
#[cfg(not(cbws_wide_probe))]
#[inline]
fn scan_tags(tags: &[u64], want: u64) -> Option<usize> {
    tags.iter().position(|&t| t == want)
}

/// Wide scan of a set's tag lane: compares `u64x4`-style chunks with a
/// branch-free mask reduction, so an 8-way set resolves in two chunk
/// compares instead of up to eight dependent ones. First-match semantics
/// (chunks in order, `trailing_zeros` within a chunk) match the scalar
/// kernel exactly.
#[cfg(cbws_wide_probe)]
#[inline]
fn scan_tags(tags: &[u64], want: u64) -> Option<usize> {
    let mut chunks = tags.chunks_exact(4);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let hits = u32::from(c[0] == want)
            | u32::from(c[1] == want) << 1
            | u32::from(c[2] == want) << 2
            | u32::from(c[3] == want) << 3;
        if hits != 0 {
            return Some(base + hits.trailing_zeros() as usize);
        }
        base += 4;
    }
    chunks
        .remainder()
        .iter()
        .position(|&t| t == want)
        .map(|i| base + i)
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            tags: vec![0; sets * cfg.assoc].into_boxed_slice(),
            meta: vec![WayMeta::empty(); sets * cfg.assoc].into_boxed_slice(),
            assoc: cfg.assoc,
            set_mask: sets as u64 - 1,
            stamp: 0,
            resident: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    #[inline]
    fn set_offset(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize * self.assoc
    }

    /// Index of the way holding `line`, if resident.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let start = self.set_offset(line);
        let want = valid_tag(line);
        scan_tags(&self.tags[start..start + self.assoc], want).map(|i| start + i)
    }

    /// Checks residency without updating LRU state or prefetch metadata.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Probes up to 64 lines in one call, returning a mask with bit `i`
    /// set iff `lines[i]` is resident. Exactly equivalent to calling
    /// [`Cache::probe`] per line (no LRU or metadata updates); the batch
    /// shape lets the hierarchy resolve a whole candidate column against
    /// the tag lanes before mutating any queue state.
    ///
    /// # Panics
    ///
    /// Panics when given more than 64 lines.
    pub fn probe_batch(&self, lines: &[LineAddr]) -> u64 {
        assert!(lines.len() <= 64, "probe_batch takes at most 64 lines");
        let mut mask = 0u64;
        for (i, &line) in lines.iter().enumerate() {
            mask |= u64::from(self.probe(line)) << i;
        }
        mask
    }

    /// Demand-touches `line`: on hit, updates LRU, sets the dirty bit if
    /// `store`, marks prefetch metadata as referenced, and returns `true`.
    /// On miss returns `false` and changes nothing.
    #[inline]
    pub fn touch(&mut self, line: LineAddr, store: bool) -> bool {
        self.demand_touch(line, store).is_some()
    }

    /// Fused probe + metadata read + touch: on hit, updates LRU, merges the
    /// dirty bit, marks prefetch metadata as referenced, and returns
    /// `Some(meta)` — the line's prefetch metadata *as it was before* this
    /// touch (so a first demand hit on a prefetched line reports
    /// `referenced == false`). On miss returns `None` and changes nothing.
    ///
    /// This is the hierarchy's L2 hit path in a single set scan; the
    /// separate [`Cache::probe`]/[`Cache::prefetch_meta`]/[`Cache::touch`]
    /// entry points would walk the set three times.
    #[inline]
    pub fn demand_touch(&mut self, line: LineAddr, store: bool) -> Option<Option<PrefetchMeta>> {
        self.stamp += 1;
        let i = self.find(line)?;
        let m = &mut self.meta[i];
        m.last_use = self.stamp;
        m.dirty |= store;
        let prior = m.prefetch;
        if let Some(meta) = &mut m.prefetch {
            meta.referenced = true;
        }
        Some(prior)
    }

    /// Returns the prefetch metadata of a resident line, if any, without
    /// updating LRU state.
    pub fn prefetch_meta(&self, line: LineAddr) -> Option<PrefetchMeta> {
        self.find(line).and_then(|i| self.meta[i].prefetch)
    }

    /// Installs `line`, evicting the LRU way of its set if the set is full.
    /// If the line is already resident this behaves like [`Cache::touch`]
    /// plus a metadata overwrite and evicts nothing.
    pub fn insert(
        &mut self,
        line: LineAddr,
        dirty: bool,
        prefetch: Option<PrefetchMeta>,
    ) -> Option<EvictedLine> {
        self.stamp += 1;
        let stamp = self.stamp;

        if let Some(i) = self.find(line) {
            let m = &mut self.meta[i];
            m.last_use = stamp;
            m.dirty |= dirty;
            if prefetch.is_some() {
                m.prefetch = prefetch;
            }
            return None;
        }

        let start = self.set_offset(line);
        let set_tags = &self.tags[start..start + self.assoc];
        // Prefer a free way; otherwise evict the set's LRU way (first of
        // the minima, matching way order).
        let victim = match scan_tags(set_tags, 0) {
            Some(i) => start + i,
            None => {
                let metas = &self.meta[start..start + self.assoc];
                start
                    + (0..self.assoc)
                        .min_by_key(|&i| metas[i].last_use)
                        .expect("assoc > 0")
            }
        };

        let victim_tag = self.tags[victim];
        let evicted = (victim_tag != 0).then(|| {
            let m = &self.meta[victim];
            EvictedLine {
                line: LineAddr(victim_tag >> 1),
                dirty: m.dirty,
                prefetch: m.prefetch,
            }
        });
        self.tags[victim] = valid_tag(line);
        self.meta[victim] = WayMeta {
            dirty,
            last_use: stamp,
            prefetch,
        };
        if victim_tag == 0 {
            self.resident += 1;
        }
        evicted
    }

    /// Removes `line` if resident, returning its state (used for inclusive-L2
    /// back-invalidation of the L1).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine> {
        let i = self.find(line)?;
        self.tags[i] = 0;
        let m = &self.meta[i];
        self.resident -= 1;
        Some(EvictedLine {
            line,
            dirty: m.dirty,
            prefetch: m.prefetch,
        })
    }

    /// Iterates over all resident lines (order unspecified). Used at the end
    /// of a simulation to count never-referenced prefetched lines as wrong.
    pub fn resident(&self) -> impl Iterator<Item = (LineAddr, Option<PrefetchMeta>)> + '_ {
        self.tags
            .iter()
            .zip(self.meta.iter())
            .filter(|(&t, _)| t != 0)
            .map(|(&t, m)| (LineAddr(t >> 1), m.prefetch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            assoc: 2,
            latency: 1,
            mshrs: 1,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.insert(LineAddr(4), false, None).is_none());
        assert!(c.probe(LineAddr(4)));
        assert!(c.touch(LineAddr(4), false));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn miss_on_empty() {
        let mut c = tiny();
        assert!(!c.touch(LineAddr(4), false));
        assert!(!c.probe(LineAddr(4)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.insert(LineAddr(0), false, None);
        c.insert(LineAddr(2), false, None);
        c.touch(LineAddr(0), false); // 2 is now LRU
        let ev = c.insert(LineAddr(4), false, None).unwrap();
        assert_eq!(ev.line, LineAddr(2));
        assert!(c.probe(LineAddr(0)));
        assert!(c.probe(LineAddr(4)));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), false, None);
        c.touch(LineAddr(0), true);
        c.insert(LineAddr(2), false, None);
        let ev = c.insert(LineAddr(4), false, None).unwrap();
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.dirty);
    }

    #[test]
    fn reinsert_does_not_evict_or_duplicate() {
        let mut c = tiny();
        c.insert(LineAddr(0), false, None);
        assert!(c.insert(LineAddr(0), true, None).is_none());
        assert_eq!(c.resident_lines(), 1);
        // Dirty bit merged.
        c.insert(LineAddr(2), false, None);
        let ev = c.insert(LineAddr(4), false, None).unwrap();
        assert!(ev.dirty || ev.line != LineAddr(0), "line 0 should be MRU");
    }

    #[test]
    fn prefetch_meta_tracked_and_referenced() {
        let mut c = tiny();
        let meta = PrefetchMeta {
            issue_time: 10,
            fill_time: 310,
            referenced: false,
        };
        c.insert(LineAddr(6), false, Some(meta));
        assert!(!c.prefetch_meta(LineAddr(6)).unwrap().referenced);
        c.touch(LineAddr(6), false);
        assert!(c.prefetch_meta(LineAddr(6)).unwrap().referenced);
    }

    #[test]
    fn demand_touch_reports_prior_meta_once() {
        let mut c = tiny();
        let meta = PrefetchMeta {
            issue_time: 10,
            fill_time: 310,
            referenced: false,
        };
        c.insert(LineAddr(6), false, Some(meta));
        // Miss: no state change.
        assert_eq!(c.demand_touch(LineAddr(4), false), None);
        // First hit sees the pre-touch (unreferenced) metadata...
        let first = c.demand_touch(LineAddr(6), false).unwrap().unwrap();
        assert!(!first.referenced);
        assert_eq!(first.fill_time, 310);
        // ...the second hit sees it referenced, and a plain line sees None.
        assert!(
            c.demand_touch(LineAddr(6), false)
                .unwrap()
                .unwrap()
                .referenced
        );
        c.insert(LineAddr(1), false, None);
        assert_eq!(c.demand_touch(LineAddr(1), true), Some(None));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(LineAddr(8), true, None);
        let ev = c.invalidate(LineAddr(8)).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(LineAddr(8)));
        assert!(c.invalidate(LineAddr(8)).is_none());
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..100 {
            c.insert(LineAddr(i), false, None);
            assert!(c.resident_lines() <= 4);
        }
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn resident_iterates_valid_lines() {
        let mut c = tiny();
        c.insert(LineAddr(1), false, None);
        c.insert(LineAddr(2), false, None);
        let mut lines: Vec<u64> = c.resident().map(|(l, _)| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2]);
    }

    #[test]
    fn sets_isolated() {
        let mut c = tiny();
        // Set 0: lines 0,2; set 1: lines 1,3. Filling set 0 must not evict set 1.
        c.insert(LineAddr(1), false, None);
        c.insert(LineAddr(0), false, None);
        c.insert(LineAddr(2), false, None);
        c.insert(LineAddr(4), false, None); // evicts within set 0 only
        assert!(c.probe(LineAddr(1)));
    }
}
