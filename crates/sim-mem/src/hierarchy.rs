//! The two-level, inclusive memory hierarchy with prefetch-into-L2.

use crate::cache::{Cache, PrefetchMeta};
use crate::config::HierarchyConfig;
use crate::dram::MainMemory;
use crate::stats::MemStats;
use cbws_telemetry::{CacheLevel, DemandKind, DropReason, SimEvent, Telemetry};
use cbws_trace::{Addr, LineAddr};
use std::collections::VecDeque;

/// How a demand L2 access interacted with prefetching (the paper's Fig. 13
/// taxonomy, minus `wrong`, which is a property of prefetched lines rather
/// than of demand accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandClass {
    /// Hit on a demand-fetched (or already-referenced) line.
    PlainHit,
    /// First hit on a completed prefetch: miss eliminated.
    Timely,
    /// The prefetch was in flight: latency reduced, not eliminated.
    ShorterWaitingTime,
    /// The line was identified and queued but not yet issued.
    NonTimely,
    /// No prefetch involvement: plain miss.
    Missing,
}

/// Result of one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// End-to-end latency in cycles, from issue to data return.
    pub latency: u64,
    /// Whether the access hit in the L1D.
    pub l1_hit: bool,
    /// Classification of the L2 interaction. `None` when the access hit in
    /// the L1 and never reached the L2.
    pub class: Option<DemandClass>,
}

#[derive(Debug, Clone, Copy)]
struct QueuedPrefetch {
    line: LineAddr,
    enqueue_time: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlightPrefetch {
    line: LineAddr,
    issue_time: u64,
    fill_time: u64,
    /// Set when a demand access arrives while the fill is in flight
    /// (shorter-waiting-time); the filled line is then born referenced.
    demand_hit: bool,
}

/// The simulated memory hierarchy: L1D + inclusive L2 + flat-latency memory,
/// with a prefetch engine that fills into the L2.
///
/// See the crate-level docs for the modelling contract. All methods take the
/// current cycle `now`; callers must present accesses in non-decreasing time
/// order.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l2: Cache,
    memory: MainMemory,
    queue: VecDeque<QueuedPrefetch>,
    inflight: Vec<InFlightPrefetch>,
    stats: MemStats,
    telemetry: Telemetry,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            memory: MainMemory::new(cfg.memory_model()),
            cfg,
            queue: VecDeque::new(),
            inflight: Vec::new(),
            stats: MemStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink; subsequent activity emits events under the
    /// `l2.*` metric namespace. The default is a disabled sink.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Cache-geometry parameters for one level, prefixed `"l1d."`/`"l2."`.
    fn level_params(prefix: &str, c: &crate::CacheConfig) -> Vec<cbws_describe::ParamSpec> {
        use cbws_describe::ParamSpec;
        vec![
            ParamSpec::new(
                format!("{prefix}.size_bytes"),
                "total capacity in bytes",
                c.size_bytes.to_string(),
                "≥ one set of lines",
            ),
            ParamSpec::new(
                format!("{prefix}.assoc"),
                "set associativity (ways per set)",
                c.assoc.to_string(),
                "≥ 1, power-of-two set count",
            ),
            ParamSpec::new(
                format!("{prefix}.latency"),
                "access latency in cycles",
                c.latency.to_string(),
                "≥ 0",
            ),
            ParamSpec::new(
                format!("{prefix}.mshrs"),
                "miss status holding registers (outstanding-miss limit)",
                c.mshrs.to_string(),
                "≥ 1",
            ),
        ]
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Read-only view of the L2 (for tests and residency queries).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Read-only view of the L1D.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The main-memory timing engine (row-hit statistics, model).
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Whether `line` is resident in the L2 or has a prefetch queued or in
    /// flight. Prefetchers use this to skip already-covered lines (the paper
    /// skips addresses that are already cached).
    pub fn is_covered(&self, line: LineAddr) -> bool {
        self.l2.probe(line)
            || self.inflight.iter().any(|p| p.line == line)
            || self.queue.iter().any(|q| q.line == line)
    }

    /// Requests a prefetch of `line` into the L2.
    ///
    /// Deduplicated against resident, queued, and in-flight lines. If the
    /// queue is full the oldest request is dropped.
    pub fn enqueue_prefetch(&mut self, now: u64, line: LineAddr) {
        self.advance(now);
        self.telemetry.set_clock(now);
        let resident = self.l2.probe(line);
        self.enqueue_prefetch_resolved(now, line, resident);
    }

    /// Requests prefetches for a whole candidate batch at cycle `now`.
    ///
    /// Byte-identical to calling [`MemoryHierarchy::enqueue_prefetch`] per
    /// line, but the hierarchy advances once and the L2 residency of the
    /// entire batch is resolved up front through [`Cache::probe_batch`] —
    /// one pass over the tag lanes per batch instead of one per call.
    /// The precomputed residency cannot go stale mid-batch: only
    /// [`MemoryHierarchy::advance`] fills the L2, and it runs before the
    /// first candidate is examined. Queue and in-flight dedup stay
    /// per-line because earlier candidates of the same batch enter the
    /// queue as it drains.
    pub fn enqueue_prefetch_batch(&mut self, now: u64, lines: &[LineAddr]) {
        if lines.is_empty() {
            return;
        }
        self.advance(now);
        self.telemetry.set_clock(now);
        for chunk in lines.chunks(64) {
            let resident = self.l2.probe_batch(chunk);
            for (i, &line) in chunk.iter().enumerate() {
                self.enqueue_prefetch_resolved(now, line, resident >> i & 1 == 1);
            }
        }
    }

    /// Shared tail of the enqueue paths, with the L2 probe already done.
    fn enqueue_prefetch_resolved(&mut self, now: u64, line: LineAddr, l2_resident: bool) {
        let covered = l2_resident
            || self.inflight.iter().any(|p| p.line == line)
            || self.queue.iter().any(|q| q.line == line);
        if covered {
            self.stats.prefetch_dedup_dropped += 1;
            self.telemetry.record(|_| SimEvent::PrefetchDropped {
                cycle: now,
                line: line.0,
                reason: DropReason::Duplicate,
            });
            self.telemetry.count("l2.prefetch.dropped.duplicate", 1);
            return;
        }
        if self.queue.len() >= self.cfg.prefetch_queue_capacity {
            let victim = self.queue.pop_front().expect("non-empty at capacity");
            self.stats.prefetch_overflow_dropped += 1;
            self.telemetry.record(|_| SimEvent::PrefetchDropped {
                cycle: now,
                line: victim.line.0,
                reason: DropReason::QueueOverflow,
            });
            self.telemetry.count("l2.prefetch.dropped.overflow", 1);
        }
        self.queue.push_back(QueuedPrefetch {
            line,
            enqueue_time: now,
        });
        self.stats.prefetch_enqueued += 1;
        self.telemetry.record(|_| SimEvent::PrefetchEnqueued {
            cycle: now,
            line: line.0,
        });
        self.telemetry.count("l2.prefetch.enqueued", 1);
    }

    /// Performs one demand access at cycle `now` and returns its latency and
    /// prefetch classification.
    pub fn demand_access(&mut self, now: u64, addr: Addr, store: bool) -> AccessOutcome {
        self.advance(now);
        self.telemetry.set_clock(now);
        let line = addr.line();
        self.stats.l1_accesses += 1;

        if self.l1d.touch(line, store) {
            self.stats.l1_hits += 1;
            let latency = self.cfg.l1_hit_latency();
            self.note_demand(now, line, DemandKind::L1Hit, latency);
            return AccessOutcome {
                latency,
                l1_hit: true,
                class: None,
            };
        }

        self.stats.l2_demand_accesses += 1;
        let l2_time = now + self.cfg.l1d.latency;

        // L2 hit path. `demand_touch` fuses the probe, the pre-touch
        // metadata read (the first-reference flag drives classification, the
        // fill time the prefetch-to-use distance histogram), and the LRU
        // touch into one set scan.
        if let Some(prior_meta) = self.l2.demand_touch(line, false) {
            let class = if let Some(meta) = prior_meta.filter(|m| !m.referenced) {
                self.stats.timely += 1;
                self.telemetry.observe(
                    "l2.prefetch.use_distance",
                    l2_time.saturating_sub(meta.fill_time),
                );
                DemandClass::Timely
            } else {
                self.stats.plain_hits += 1;
                DemandClass::PlainHit
            };
            self.fill_l1(line, store);
            let latency = self.cfg.l2_hit_latency();
            self.note_demand(now, line, demand_kind(class), latency);
            return AccessOutcome {
                latency,
                l1_hit: false,
                class: Some(class),
            };
        }

        // In-flight prefetch: the demand piggybacks on the outstanding
        // fill. The line is installed now (inclusion with the L1 fill
        // below; the full residual latency is charged to this access) while
        // the MSHR slot stays occupied until the fill's completion time.
        if let Some(p) = self.inflight.iter_mut().find(|p| p.line == line) {
            p.demand_hit = true;
            let meta = PrefetchMeta {
                issue_time: p.issue_time,
                fill_time: p.fill_time,
                referenced: true,
            };
            let remaining = p.fill_time.saturating_sub(l2_time);
            self.stats.shorter_waiting_time += 1;
            self.fill_l2(line, Some(meta));
            self.fill_l1(line, store);
            let latency = self.cfg.l2_hit_latency() + remaining;
            self.note_demand(now, line, DemandKind::ShorterWaitingTime, latency);
            return AccessOutcome {
                latency,
                l1_hit: false,
                class: Some(DemandClass::ShorterWaitingTime),
            };
        }

        // Queued but never issued: the prefetcher identified the line but
        // was too late. The demand fetch supersedes the queued request.
        let class = if let Some(pos) = self.queue.iter().position(|q| q.line == line) {
            self.queue.remove(pos);
            self.stats.non_timely += 1;
            DemandClass::NonTimely
        } else {
            self.stats.missing += 1;
            DemandClass::Missing
        };

        let request_time = l2_time + self.cfg.l2.latency;
        let completion = self.memory.access(request_time, line);
        self.fill_l2(line, None);
        self.stats.demand_fills += 1;
        self.fill_l1(line, store);
        let latency = self.cfg.l2_hit_latency() + (completion - request_time);
        self.note_demand(now, line, demand_kind(class), latency);
        AccessOutcome {
            latency,
            l1_hit: false,
            class: Some(class),
        }
    }

    /// Emits the structured event and metrics for one classified demand
    /// access.
    fn note_demand(&self, now: u64, line: LineAddr, kind: DemandKind, latency: u64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.record(|_| SimEvent::Demand {
            cycle: now,
            line: line.0,
            kind,
            latency,
        });
        self.telemetry.count(kind_counter(kind), 1);
        if kind != DemandKind::L1Hit {
            self.telemetry.observe("l2.demand.latency", latency);
        }
    }

    /// Completes in-flight prefetch fills due by `now` and issues queued
    /// prefetches into freed MSHR slots. A request that had to wait for a
    /// slot is issued at the completion time of the fill that freed it.
    pub fn advance(&mut self, now: u64) {
        // Fast path for the overwhelmingly common call where nothing can
        // happen: no queued request can issue (queue empty or every MSHR
        // slot busy) and no in-flight fill is due yet. The loop below would
        // conclude the same after strictly more work; `advance` runs on
        // every demand access, so the no-op case must stay cheap.
        if (self.queue.is_empty() || self.inflight.len() >= self.cfg.prefetch_mshrs())
            && !self.inflight.iter().any(|p| p.fill_time <= now)
        {
            return;
        }
        loop {
            // Fill any free slots; these requests never waited, so they
            // issue at their enqueue times.
            while self.inflight.len() < self.cfg.prefetch_mshrs() && self.issue_one(0) {}
            // Complete the earliest due fill, freeing an MSHR slot.
            let due = self
                .inflight
                .iter()
                .enumerate()
                .filter(|(_, p)| p.fill_time <= now)
                .min_by_key(|(_, p)| p.fill_time)
                .map(|(i, _)| i);
            match due {
                Some(i) => {
                    let p = self.inflight.swap_remove(i);
                    let meta = PrefetchMeta {
                        issue_time: p.issue_time,
                        fill_time: p.fill_time,
                        referenced: p.demand_hit,
                    };
                    self.fill_l2(p.line, Some(meta));
                    self.stats.prefetch_fills += 1;
                    self.telemetry.record(|_| SimEvent::PrefetchFilled {
                        cycle: p.fill_time,
                        line: p.line.0,
                        referenced: p.demand_hit,
                    });
                    self.telemetry.count("l2.prefetch.fills", 1);
                    // The freed slot becomes usable at the fill time.
                    self.issue_one(p.fill_time);
                }
                None => break,
            }
        }
    }

    /// Finalizes the run at cycle `now`: lands all in-flight prefetches and
    /// counts every never-referenced prefetched line (resident or in flight)
    /// as a wrong prefetch. Call exactly once, after the last access.
    pub fn finish(&mut self, now: u64) -> MemStats {
        // Give queued requests one last chance at the free MSHR slots of
        // cycle `now`; whatever still cannot issue is discarded (it consumed
        // no bandwidth and is not counted as wrong).
        self.advance(now);
        self.queue.clear();
        while let Some(h) = self.inflight.iter().map(|p| p.fill_time).max() {
            self.advance(h + 1);
        }
        let resident_wrong = self
            .l2
            .resident()
            .filter(|(_, meta)| meta.is_some_and(|m| !m.referenced))
            .count() as u64;
        self.stats.wrong += resident_wrong;
        self.stats
    }

    /// Installs `line` into the L1, handling L1 victim write-back into the
    /// L2 (which must hold the line, by inclusion).
    fn fill_l1(&mut self, line: LineAddr, store: bool) {
        if let Some(victim) = self.l1d.insert(line, store, None) {
            self.telemetry.record(|now| SimEvent::Eviction {
                cycle: now,
                line: victim.line.0,
                level: CacheLevel::L1d,
                dirty: victim.dirty,
            });
            self.telemetry.count("l1d.evictions", 1);
            if victim.dirty {
                // Write-back to L2. By inclusion the victim is resident in
                // the L2 unless it was just back-invalidated (in which case
                // it has already been written back to memory).
                if !self.l2.touch(victim.line, true) {
                    self.stats.writebacks += 1;
                }
            }
        }
    }

    /// Installs `line` into the L2, maintaining inclusion and wrong-prefetch
    /// / pollution accounting for the victim.
    fn fill_l2(&mut self, line: LineAddr, meta: Option<PrefetchMeta>) {
        if let Some(victim) = self.l2.insert(line, false, meta) {
            self.telemetry.record(|now| SimEvent::Eviction {
                cycle: now,
                line: victim.line.0,
                level: CacheLevel::L2,
                dirty: victim.dirty,
            });
            self.telemetry.count("l2.evictions", 1);
            if victim.prefetch.is_some_and(|m| !m.referenced) {
                self.stats.wrong += 1;
                self.telemetry.count("l2.prefetch.wrong", 1);
            }
            if meta.is_some() && victim.prefetch.is_none() {
                self.stats.pollution_evictions += 1;
                self.telemetry.count("l2.prefetch.pollution_evictions", 1);
            }
            let mut dirty = victim.dirty;
            // Inclusive hierarchy: evicting from L2 back-invalidates the L1.
            if let Some(l1_victim) = self.l1d.invalidate(victim.line) {
                dirty |= l1_victim.dirty;
            }
            if dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Issues the next still-relevant queued prefetch at time
    /// `max(enqueue_time, slot_free_time)`. Returns whether one was issued.
    fn issue_one(&mut self, slot_free_time: u64) -> bool {
        while let Some(q) = self.queue.pop_front() {
            if self.l2.probe(q.line) || self.inflight.iter().any(|p| p.line == q.line) {
                self.stats.prefetch_dedup_dropped += 1;
                self.telemetry.record(|now| SimEvent::PrefetchDropped {
                    cycle: now,
                    line: q.line.0,
                    reason: DropReason::Duplicate,
                });
                self.telemetry.count("l2.prefetch.dropped.duplicate", 1);
                continue;
            }
            let issue_time = q.enqueue_time.max(slot_free_time);
            let fill_time = self.memory.access(issue_time, q.line);
            self.inflight.push(InFlightPrefetch {
                line: q.line,
                issue_time,
                fill_time,
                demand_hit: false,
            });
            self.stats.prefetch_issued += 1;
            self.telemetry.record(|_| SimEvent::PrefetchIssued {
                cycle: issue_time,
                line: q.line.0,
            });
            self.telemetry.count("l2.prefetch.issued", 1);
            return true;
        }
        false
    }
}

impl cbws_describe::Describe for MemoryHierarchy {
    fn describe(&self) -> cbws_describe::ComponentDescription {
        use cbws_describe::{ComponentDescription, ComponentKind, MetricSpec, ParamSpec};
        let c = &self.cfg;
        let mut d = ComponentDescription::new(
            "Memory hierarchy",
            ComponentKind::MemoryModel,
            "Two-level inclusive hierarchy with prefetch-into-L2 (Table II): \
             L1D and unified L2 with per-level MSHR limits, a bounded prefetch \
             queue draining into spare L2 MSHRs, and either the paper's flat \
             300-cycle memory or an optional banked-DRAM timing model. Demand \
             accesses are classified with the Fig. 13 taxonomy (timely, \
             shorter-waiting-time, non-timely, missing) and prefetched lines \
             evicted unreferenced count as wrong.",
        )
        .paper_section("§VI, Table II (simulated system); §VII-C, Fig. 13");
        for p in Self::level_params("l1d", &c.l1d) {
            d = d.param(p);
        }
        for p in Self::level_params("l2", &c.l2) {
            d = d.param(p);
        }
        d.param(ParamSpec::new(
            "memory_latency",
            "flat main-memory latency in cycles (ignored when `dram` is set)",
            c.memory_latency.to_string(),
            "≥ 0",
        ))
        .param(ParamSpec::new(
            "dram",
            "optional banked-DRAM timing model below the L2 \
             (row hits/misses, bank queues); `None` keeps the flat model",
            match c.dram {
                Some(d) => format!("{} banks", d.banks),
                None => "None".to_string(),
            },
            "None or a DramConfig",
        ))
        .param(ParamSpec::new(
            "demand_reserved_mshrs",
            "L2 MSHRs reserved for demand misses; prefetches use the rest",
            c.demand_reserved_mshrs.to_string(),
            "0 ..= l2.mshrs",
        ))
        .param(ParamSpec::new(
            "prefetch_queue_capacity",
            "prefetch request queue depth; overflow drops oldest-first",
            c.prefetch_queue_capacity.to_string(),
            "≥ 1",
        ))
        .metric(MetricSpec::counter(
            "l2.demand.plain_hit",
            "demand L2 hits on demand-fetched or already-referenced lines",
        ))
        .metric(MetricSpec::counter(
            "l2.demand.timely",
            "first hits on completed prefetches: miss eliminated (Fig. 13)",
        ))
        .metric(MetricSpec::counter(
            "l2.demand.shorter_waiting_time",
            "demand arrived while the prefetch was in flight (Fig. 13)",
        ))
        .metric(MetricSpec::counter(
            "l2.demand.non_timely",
            "line was queued but not yet issued when demanded (Fig. 13)",
        ))
        .metric(MetricSpec::counter(
            "l2.demand.missing",
            "plain L2 misses with no prefetch involvement (Fig. 13)",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.enqueued",
            "prefetch requests accepted into the queue",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.issued",
            "prefetches issued to memory (granted an L2 MSHR)",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.fills",
            "prefetch fills completing into the L2",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.wrong",
            "prefetched lines evicted without ever being referenced",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.pollution_evictions",
            "demand-fetched lines evicted by prefetch fills",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.dropped.duplicate",
            "prefetch requests dropped as already covered",
        ))
        .metric(MetricSpec::counter(
            "l2.prefetch.dropped.overflow",
            "prefetch requests dropped to queue overflow (oldest first)",
        ))
        .metric(MetricSpec::counter("l1d.hits", "demand hits in the L1D"))
        .metric(MetricSpec::counter("l1d.evictions", "L1D line evictions"))
        .metric(MetricSpec::counter("l2.evictions", "L2 line evictions"))
        .metric(MetricSpec::histogram(
            "l2.demand.latency",
            "end-to-end demand latency in cycles, issue to data return",
        ))
        .metric(MetricSpec::histogram(
            "l2.prefetch.use_distance",
            "cycles between a prefetch fill and its first demand use",
        ))
    }
}

/// The event-taxonomy label for a demand classification.
fn demand_kind(class: DemandClass) -> DemandKind {
    match class {
        DemandClass::PlainHit => DemandKind::PlainHit,
        DemandClass::Timely => DemandKind::Timely,
        DemandClass::ShorterWaitingTime => DemandKind::ShorterWaitingTime,
        DemandClass::NonTimely => DemandKind::NonTimely,
        DemandClass::Missing => DemandKind::Missing,
    }
}

/// The metrics path counting accesses of `kind` (the Fig. 13 taxonomy).
fn kind_counter(kind: DemandKind) -> &'static str {
    match kind {
        DemandKind::L1Hit => "l1d.hits",
        DemandKind::PlainHit => "l2.demand.plain_hit",
        DemandKind::Timely => "l2.demand.timely",
        DemandKind::ShorterWaitingTime => "l2.demand.shorter_waiting_time",
        DemandKind::NonTimely => "l2.demand.non_timely",
        DemandKind::Missing => "l2.demand.missing",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1d: crate::CacheConfig {
                size_bytes: 4 * 64,
                assoc: 2,
                latency: 2,
                mshrs: 4,
            },
            l2: crate::CacheConfig {
                size_bytes: 16 * 64,
                assoc: 4,
                latency: 30,
                mshrs: 8,
            },
            memory_latency: 300,
            dram: None,
            demand_reserved_mshrs: 4,
            prefetch_queue_capacity: 8,
        }
    }

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    fn addr(n: u64) -> Addr {
        LineAddr(n).base()
    }

    #[test]
    fn cold_miss_full_latency() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let out = m.demand_access(0, addr(100), false);
        assert_eq!(out.latency, 332);
        assert_eq!(out.class, Some(DemandClass::Missing));
        assert!(!out.l1_hit);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.demand_access(0, addr(100), false);
        let out = m.demand_access(400, addr(100), false);
        assert!(out.l1_hit);
        assert_eq!(out.latency, 2);
        assert_eq!(out.class, None);
    }

    #[test]
    fn timely_prefetch_eliminates_miss() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.enqueue_prefetch(0, line(5));
        let out = m.demand_access(1000, addr(5), false);
        assert_eq!(out.class, Some(DemandClass::Timely));
        assert_eq!(out.latency, 32);
        assert_eq!(m.stats().timely, 1);
        // Second access to the same line from L2's view is a plain hit
        // (after L1 eviction), but here it hits L1.
        let out2 = m.demand_access(1100, addr(5), false);
        assert!(out2.l1_hit);
    }

    #[test]
    fn inflight_prefetch_shortens_wait() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.enqueue_prefetch(0, line(9));
        // Demand arrives at cycle 100; fill completes at 300.
        let out = m.demand_access(100, addr(9), false);
        assert_eq!(out.class, Some(DemandClass::ShorterWaitingTime));
        // l2_time = 102, remaining = 300 - 102 = 198, total = 32 + 198.
        assert_eq!(out.latency, 230);
        assert!(out.latency < 332);
        // The fill must not later be counted wrong.
        let stats = m.finish(1000);
        assert_eq!(stats.wrong, 0);
        assert_eq!(stats.shorter_waiting_time, 1);
    }

    #[test]
    fn queued_unissued_prefetch_is_non_timely() {
        let mut m = MemoryHierarchy::new(small_cfg());
        // Fill all 4 prefetch MSHRs, then queue one more.
        for i in 0..5 {
            m.enqueue_prefetch(0, line(100 + i));
        }
        // At time 10, lines 100..104 are in flight, 104 is queued.
        let out = m.demand_access(10, addr(104), false);
        assert_eq!(out.class, Some(DemandClass::NonTimely));
        assert_eq!(out.latency, 332);
        assert_eq!(m.stats().non_timely, 1);
    }

    #[test]
    fn wrong_prefetch_counted_at_finish() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.enqueue_prefetch(0, line(42));
        m.enqueue_prefetch(0, line(43));
        m.demand_access(1000, addr(42), false);
        let stats = m.finish(2000);
        assert_eq!(stats.wrong, 1); // line 43 never referenced
        assert_eq!(stats.timely, 1);
    }

    #[test]
    fn wrong_prefetch_counted_at_eviction() {
        let mut m = MemoryHierarchy::new(small_cfg());
        // L2 has 4 sets x 4 ways; lines 0,4,8,... map to set 0.
        m.enqueue_prefetch(0, line(0));
        m.advance(400);
        // Evict it with demand fills to the same set.
        for i in 1..=4 {
            m.demand_access(500 + i * 400, addr(i * 4), false);
        }
        assert_eq!(m.stats().wrong, 1);
    }

    #[test]
    fn dedup_drops_resident_and_duplicate_requests() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.demand_access(0, addr(7), false);
        m.enqueue_prefetch(400, line(7)); // resident in L2 already
        assert_eq!(m.stats().prefetch_dedup_dropped, 1);
        m.enqueue_prefetch(400, line(8));
        m.enqueue_prefetch(401, line(8)); // in flight already
        assert_eq!(m.stats().prefetch_dedup_dropped, 2);
    }

    #[test]
    fn queue_overflow_drops_oldest() {
        let cfg = small_cfg();
        let mut m = MemoryHierarchy::new(cfg);
        // 4 in flight + 8 queue capacity; request 13 evicts the oldest queued.
        for i in 0..13 {
            m.enqueue_prefetch(0, line(200 + i));
        }
        assert_eq!(m.stats().prefetch_overflow_dropped, 1);
    }

    #[test]
    fn inclusion_back_invalidates_l1() {
        let mut m = MemoryHierarchy::new(small_cfg());
        // Bring line 0 into both levels.
        m.demand_access(0, addr(0), false);
        assert!(m.l1d().probe(line(0)));
        // Evict line 0 from L2 set 0 (4 ways): fill lines 4, 8, 12, 16.
        let mut t = 400;
        for l in [4u64, 8, 12, 16] {
            m.demand_access(t, addr(l), false);
            t += 400;
        }
        assert!(!m.l2().probe(line(0)));
        assert!(
            !m.l1d().probe(line(0)),
            "inclusion violated: L1 holds an L2-evicted line"
        );
    }

    #[test]
    fn store_dirty_writeback_chain() {
        let mut m = MemoryHierarchy::new(small_cfg());
        // Dirty a line in L1, evict through both levels, expect a writeback.
        m.demand_access(0, addr(0), true);
        let mut t = 400;
        // L1 has 2 sets x 2 ways; lines 0,2,4.. map to set 0.
        for l in [2u64, 4, 6] {
            m.demand_access(t, addr(l), true);
            t += 400;
        }
        // line 0 evicted from L1 dirty -> merged into L2. Now evict from L2.
        for l in [8u64, 12, 16, 20] {
            m.demand_access(t, addr(l), false);
            t += 400;
        }
        assert!(m.stats().writebacks >= 1);
    }

    #[test]
    fn classification_partitions_demand_accesses() {
        let mut m = MemoryHierarchy::new(small_cfg());
        let mut t = 0;
        for i in 0..200u64 {
            if i % 3 == 0 {
                m.enqueue_prefetch(t, line(i + 1));
            }
            m.demand_access(t, addr(i % 40), i % 7 == 0);
            t += 50;
        }
        let stats = m.finish(t);
        assert!(stats.classification_is_partition());
    }

    #[test]
    fn prefetch_fill_time_respects_memory_latency() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.enqueue_prefetch(100, line(77));
        // At cycle 399 the fill (due 400) has not landed: in-flight hit.
        let out = m.demand_access(399, addr(77), false);
        assert_eq!(out.class, Some(DemandClass::ShorterWaitingTime));
    }

    #[test]
    fn pollution_counted_when_prefetch_evicts_demand_line() {
        let mut m = MemoryHierarchy::new(small_cfg());
        // Demand-fill L2 set 0 (4 ways: lines 0,4,8,12), then prefetch four
        // more lines of the same set: each fill evicts a demand line.
        let mut t = 0;
        for l in [0u64, 4, 8, 12] {
            m.demand_access(t, addr(l), false);
            t += 400;
        }
        for l in [16u64, 20, 24, 28] {
            m.enqueue_prefetch(t, line(l));
        }
        let stats = m.finish(t + 10_000);
        assert_eq!(stats.pollution_evictions, 4);
    }

    #[test]
    fn demand_fills_do_not_count_as_pollution() {
        let mut m = MemoryHierarchy::new(small_cfg());
        let mut t = 0;
        for l in [0u64, 4, 8, 12, 16] {
            m.demand_access(t, addr(l), false);
            t += 400;
        }
        assert_eq!(m.stats().pollution_evictions, 0);
    }

    #[test]
    fn finish_on_empty_hierarchy_is_clean() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let stats = m.finish(0);
        assert_eq!(stats, MemStats::default());
    }

    #[test]
    fn store_to_prefetched_line_counts_timely_and_dirties() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.enqueue_prefetch(0, line(11));
        let out = m.demand_access(500, addr(11), true);
        assert_eq!(out.class, Some(DemandClass::Timely));
        // Evict it through the L1 (2 sets x ... default L1 is 128 sets x 4
        // ways; lines 11, 11+128, ... share a set) and verify the dirty
        // data eventually writes back through the hierarchy.
        let mut t = 1000;
        for k in 1..=4u64 {
            m.demand_access(t, addr(11 + k * 128), true);
            t += 400;
        }
        // The L1 victim writes back into the resident L2 copy, not memory.
        assert_eq!(m.stats().writebacks, 0);
        assert!(m.l2().probe(line(11)));
    }

    #[test]
    fn demand_then_prefetch_request_is_dedup_dropped_not_wrong() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.demand_access(0, addr(99), false);
        m.enqueue_prefetch(400, line(99));
        let stats = m.finish(1000);
        assert_eq!(stats.wrong, 0);
        assert_eq!(stats.prefetch_dedup_dropped, 1);
        assert_eq!(stats.prefetch_issued, 0);
    }

    #[test]
    fn non_decreasing_time_with_large_gaps() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.enqueue_prefetch(0, line(5));
        // Jump far into the future: the fill must have landed exactly once.
        m.advance(1_000_000);
        assert_eq!(m.stats().prefetch_fills, 1);
        m.advance(2_000_000);
        assert_eq!(m.stats().prefetch_fills, 1);
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let t = Telemetry::enabled(1 << 12);
        let mut m = MemoryHierarchy::new(small_cfg());
        m.set_telemetry(t.clone());
        let mut time = 0;
        for i in 0..200u64 {
            if i % 3 == 0 {
                m.enqueue_prefetch(time, line(i + 1));
            }
            m.demand_access(time, addr(i % 40), i % 7 == 0);
            time += 50;
        }
        // One guaranteed-timely access: prefetch, wait out the fill, touch.
        m.enqueue_prefetch(time, line(1000));
        time += 1000;
        m.demand_access(time, addr(1000), false);
        let stats = m.finish(time);

        let counter = |path: &str| t.with_metrics(|r| r.counter(path)).unwrap().unwrap_or(0);
        assert_eq!(counter("l2.demand.timely"), stats.timely);
        assert_eq!(counter("l2.demand.missing"), stats.missing);
        assert_eq!(counter("l2.demand.non_timely"), stats.non_timely);
        assert_eq!(
            counter("l2.demand.shorter_waiting_time"),
            stats.shorter_waiting_time
        );
        assert_eq!(counter("l2.demand.plain_hit"), stats.plain_hits);
        assert_eq!(counter("l1d.hits"), stats.l1_hits);
        assert_eq!(counter("l2.prefetch.enqueued"), stats.prefetch_enqueued);
        assert_eq!(counter("l2.prefetch.issued"), stats.prefetch_issued);
        assert_eq!(counter("l2.prefetch.fills"), stats.prefetch_fills);
        assert_eq!(
            counter("l2.prefetch.dropped.duplicate"),
            stats.prefetch_dedup_dropped
        );

        // The latency histogram sampled every L2-reaching access.
        let l2_samples = t
            .with_metrics(|r| r.histogram("l2.demand.latency").map(|h| h.count()))
            .unwrap()
            .unwrap();
        assert_eq!(l2_samples, stats.l2_demand_accesses);

        // Events were recorded with non-decreasing availability of kinds.
        let events = t.events();
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| matches!(
            e,
            SimEvent::Demand {
                kind: DemandKind::Timely,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::PrefetchIssued { .. })));
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let run = |telemetry: Option<Telemetry>| {
            let mut m = MemoryHierarchy::new(small_cfg());
            if let Some(t) = telemetry {
                m.set_telemetry(t);
            }
            let mut time = 0;
            for i in 0..300u64 {
                if i % 4 == 0 {
                    m.enqueue_prefetch(time, line(i + 2));
                }
                m.demand_access(time, addr(i % 50), false);
                time += 30;
            }
            m.finish(time)
        };
        let plain = run(None);
        let with_enabled = run(Some(Telemetry::enabled(256)));
        assert_eq!(
            plain, with_enabled,
            "telemetry must be observationally transparent"
        );
    }

    #[test]
    fn batch_enqueue_matches_sequential_enqueue() {
        // Drive two hierarchies through the same interleaving of demand
        // accesses and prefetch candidates, one enqueueing per line and
        // one per batch (with intra-batch duplicates and already-resident
        // lines), and require identical stats — the batch path must be
        // observationally equivalent.
        let run = |batched: bool| {
            let mut m = MemoryHierarchy::new(small_cfg());
            let mut time = 0;
            for i in 0..400u64 {
                m.demand_access(time, addr(i % 60), i % 7 == 0);
                if i % 3 == 0 {
                    let cands = [
                        line(i + 1),
                        line(i + 2),
                        line(i + 1), // duplicate within the batch
                        line((i % 60) * 64 / 64),
                    ];
                    if batched {
                        m.enqueue_prefetch_batch(time, &cands);
                    } else {
                        for &l in &cands {
                            m.enqueue_prefetch(time, l);
                        }
                    }
                }
                time += 17;
            }
            m.finish(time)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn mshr_backpressure_limits_inflight() {
        let cfg = small_cfg(); // 4 prefetch MSHRs
        let mut m = MemoryHierarchy::new(cfg);
        for i in 0..8 {
            m.enqueue_prefetch(0, line(300 + i));
        }
        // Only 4 issued immediately.
        assert_eq!(m.stats().prefetch_issued, 4);
        // After one memory latency, the next batch issues.
        m.advance(301);
        assert_eq!(m.stats().prefetch_issued, 8);
        let stats = m.finish(10_000);
        assert_eq!(stats.prefetch_fills, 8);
        assert_eq!(stats.wrong, 8);
    }
}
