//! Property tests for the tag-lane scan kernels: `probe_batch` (and the
//! `find` scan underneath every probe/touch/insert) must agree with a
//! shadow model of resident lines for arbitrary operation sequences.
//!
//! These run under both kernel selections — the scalar scan by default
//! and the 4-wide unrolled scan with `--features simd` — so CI's dual
//! build proves the kernels are interchangeable.

use cbws_sim_mem::{Cache, CacheConfig};
use cbws_trace::LineAddr;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Invalidate(u64),
    Touch(u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..4096).prop_map(Op::Insert),
            (0u64..4096).prop_map(Op::Insert), // inserts weighted up
            (0u64..4096).prop_map(Op::Insert),
            (0u64..4096).prop_map(Op::Invalidate),
            (0u64..4096).prop_map(Op::Touch),
        ],
        0..400,
    )
}

fn geometry_strategy() -> impl Strategy<Value = CacheConfig> {
    // Associativities straddling the 4-wide chunk size: below, exact,
    // multiple, and with a remainder.
    prop_oneof![Just(1usize), Just(2), Just(4), Just(6), Just(8), Just(16)].prop_map(|assoc| {
        CacheConfig {
            size_bytes: (assoc * 16 * 64) as u64, // 16 sets
            assoc,
            latency: 1,
            mshrs: 4,
        }
    })
}

proptest! {
    /// After an arbitrary op sequence, `probe_batch` over arbitrary query
    /// batches equals the per-line scalar model (a `HashSet` of lines the
    /// cache itself reports resident).
    #[test]
    fn probe_batch_matches_per_way_scalar_probe(
        cfg in geometry_strategy(),
        ops in ops_strategy(),
        queries in proptest::collection::vec(0u64..4096, 0..64),
    ) {
        let mut cache = Cache::new(cfg);
        for op in ops {
            match op {
                Op::Insert(l) => { cache.insert(LineAddr(l), false, None); }
                Op::Invalidate(l) => { cache.invalidate(LineAddr(l)); }
                Op::Touch(l) => { cache.touch(LineAddr(l), false); }
            }
        }
        // The model: what the cache itself enumerates as resident. The
        // enumeration walks raw tags without the scan kernel, so the two
        // kernels are checked against ground truth, not against each
        // other's bugs.
        let resident: HashSet<u64> = cache.resident().map(|(l, _)| l.0).collect();
        let lines: Vec<LineAddr> = queries.iter().map(|&l| LineAddr(l)).collect();
        let mask = cache.probe_batch(&lines);
        for (i, &line) in lines.iter().enumerate() {
            let batch_hit = mask >> i & 1 == 1;
            prop_assert_eq!(batch_hit, resident.contains(&line.0), "line {}", line.0);
            prop_assert_eq!(batch_hit, cache.probe(line), "probe disagrees at {}", line.0);
        }
    }

    /// Residency bookkeeping stays exact under the selected kernel: the
    /// resident count equals the shadow set's size.
    #[test]
    fn resident_count_matches_model(cfg in geometry_strategy(), ops in ops_strategy()) {
        let mut cache = Cache::new(cfg);
        for op in ops {
            match op {
                Op::Insert(l) => { cache.insert(LineAddr(l), false, None); }
                Op::Invalidate(l) => { cache.invalidate(LineAddr(l)); }
                Op::Touch(l) => { cache.touch(LineAddr(l), false); }
            }
        }
        prop_assert_eq!(cache.resident_lines(), cache.resident().count());
    }
}
