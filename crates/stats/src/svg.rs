//! Minimal, dependency-free SVG chart rendering, so the experiment
//! binaries can regenerate the paper's *figures* (grouped bars for
//! Figs. 12/14/15, stacked bars for Fig. 13, curves for Fig. 5) and not
//! just their data tables.
//!
//! The output is plain SVG 1.1 and renders in any browser. The API is
//! deliberately small: construct a chart, add series, render to a string.

use std::fmt::Write as _;

/// Default categorical palette (seven series, one per prefetcher).
pub const PALETTE: [&str; 8] = [
    "#7f7f7f", "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#17becf",
];

const W: f64 = 1060.0;
const H: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 180.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 120.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"11\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        W / 2.0,
        esc(title)
    )
}

fn legend(out: &mut String, names: &[String]) {
    let x = W - MARGIN_R + 16.0;
    for (i, name) in names.iter().enumerate() {
        let y = MARGIN_T + 14.0 + i as f64 * 18.0;
        let color = PALETTE[i % PALETTE.len()];
        let _ = writeln!(
            out,
            "<rect x=\"{x}\" y=\"{}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\
             <text x=\"{}\" y=\"{}\">{}</text>",
            y - 10.0,
            x + 16.0,
            y,
            esc(name)
        );
    }
}

fn y_axis(out: &mut String, max: f64, label: &str) {
    let plot_h = H - MARGIN_T - MARGIN_B;
    for k in 0..=5 {
        let v = max * f64::from(k) / 5.0;
        let y = H - MARGIN_B - plot_h * f64::from(k) / 5.0;
        let _ = writeln!(
            out,
            "<line x1=\"{MARGIN_L}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" \
             stroke=\"#ddd\"/>\
             <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{v:.2}</text>",
            W - MARGIN_R,
            MARGIN_L - 6.0,
            y + 4.0
        );
    }
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"{}\" transform=\"rotate(-90 16 {})\" \
         text-anchor=\"middle\">{}</text>",
        (H - MARGIN_B + MARGIN_T) / 2.0,
        (H - MARGIN_B + MARGIN_T) / 2.0,
        esc(label)
    );
}

/// A grouped bar chart: one category per benchmark, one bar per series
/// (Figs. 12, 14, 15).
#[derive(Debug, Clone)]
pub struct GroupedBarChart {
    title: String,
    y_label: String,
    categories: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

impl GroupedBarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        GroupedBarChart {
            title: title.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the category (x-axis) labels.
    pub fn categories<I: IntoIterator<Item = String>>(mut self, cats: I) -> Self {
        self.categories = cats.into_iter().collect();
        self
    }

    /// Adds one series; its values align with the categories (missing
    /// values are treated as 0, extras ignored).
    pub fn series(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.series.push((name.into(), values));
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if the chart has no categories or no series.
    pub fn render(&self) -> String {
        assert!(!self.categories.is_empty(), "chart needs categories");
        assert!(!self.series.is_empty(), "chart needs at least one series");
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter())
            .fold(0.0f64, |m, &v| m.max(v))
            .max(1e-9);
        let plot_w = W - MARGIN_L - MARGIN_R;
        let plot_h = H - MARGIN_T - MARGIN_B;
        let ncat = self.categories.len() as f64;
        let nser = self.series.len() as f64;
        let slot = plot_w / ncat;
        let bar = (slot * 0.85) / nser;

        let mut out = header(&self.title);
        y_axis(&mut out, max, &self.y_label);
        for (si, (_, values)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (ci, _) in self.categories.iter().enumerate() {
                let v = values.get(ci).copied().unwrap_or(0.0).max(0.0).min(max);
                let h = plot_h * v / max;
                let x = MARGIN_L + ci as f64 * slot + slot * 0.075 + si as f64 * bar;
                let y = H - MARGIN_B - h;
                let _ = writeln!(
                    out,
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar:.1}\" \
                     height=\"{h:.1}\" fill=\"{color}\"/>"
                );
            }
        }
        for (ci, cat) in self.categories.iter().enumerate() {
            let x = MARGIN_L + (ci as f64 + 0.5) * slot;
            let y = H - MARGIN_B + 10.0;
            let _ = writeln!(
                out,
                "<text x=\"{x:.1}\" y=\"{y:.1}\" text-anchor=\"end\" \
                 transform=\"rotate(-45 {x:.1} {y:.1})\">{}</text>",
                esc(cat)
            );
        }
        legend(
            &mut out,
            &self
                .series
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
        );
        out.push_str("</svg>\n");
        out
    }
}

/// A line chart with one polyline per series over shared x positions
/// (Fig. 5's coverage curves).
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// Creates an empty line chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds one series of (x, y) points (x and y in 0..=1 for Fig. 5).
    pub fn series(mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        self.series.push((name.into(), points));
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if no series were added.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "chart needs at least one series");
        let (mut xmax, mut ymax) = (1e-9f64, 1e-9f64);
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                xmax = xmax.max(x);
                ymax = ymax.max(y);
            }
        }
        let plot_w = W - MARGIN_L - MARGIN_R;
        let plot_h = H - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + plot_w * (x / xmax).clamp(0.0, 1.0);
        let py = |y: f64| H - MARGIN_B - plot_h * (y / ymax).clamp(0.0, 1.0);

        let mut out = header(&self.title);
        y_axis(&mut out, ymax, &self.y_label);
        for k in 0..=5 {
            let v = xmax * f64::from(k) / 5.0;
            let x = px(v);
            let _ = writeln!(
                out,
                "<text x=\"{x:.1}\" y=\"{}\" text-anchor=\"middle\">{v:.2}</text>",
                H - MARGIN_B + 16.0
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            MARGIN_L + plot_w / 2.0,
            H - MARGIN_B + 40.0,
            esc(&self.x_label)
        );
        for (si, (_, pts)) in self.series.iter().enumerate() {
            if pts.is_empty() {
                continue;
            }
            let color = PALETTE[si % PALETTE.len()];
            let path: String = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" \
                 stroke-width=\"2\"/>"
            );
        }
        legend(
            &mut out,
            &self
                .series
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
        );
        out.push_str("</svg>\n");
        out
    }
}

/// A stacked bar chart: one bar per category, segments per series
/// (Fig. 13's timeliness breakdown).
#[derive(Debug, Clone)]
pub struct StackedBarChart {
    title: String,
    y_label: String,
    categories: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

impl StackedBarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        StackedBarChart {
            title: title.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the category (x-axis) labels.
    pub fn categories<I: IntoIterator<Item = String>>(mut self, cats: I) -> Self {
        self.categories = cats.into_iter().collect();
        self
    }

    /// Adds one stack segment series.
    pub fn series(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.series.push((name.into(), values));
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if the chart has no categories or no series.
    pub fn render(&self) -> String {
        assert!(!self.categories.is_empty(), "chart needs categories");
        assert!(!self.series.is_empty(), "chart needs at least one series");
        let totals: Vec<f64> = (0..self.categories.len())
            .map(|ci| {
                self.series
                    .iter()
                    .map(|(_, v)| v.get(ci).copied().unwrap_or(0.0))
                    .sum()
            })
            .collect();
        let max = totals.iter().fold(0.0f64, |m, &v| m.max(v)).max(1e-9);
        let plot_w = W - MARGIN_L - MARGIN_R;
        let plot_h = H - MARGIN_T - MARGIN_B;
        let slot = plot_w / self.categories.len() as f64;
        let bar = slot * 0.7;

        let mut out = header(&self.title);
        y_axis(&mut out, max, &self.y_label);
        let mut stack = vec![0.0f64; self.categories.len()];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (ci, acc) in stack.iter_mut().enumerate() {
                let v = values.get(ci).copied().unwrap_or(0.0).max(0.0);
                let y0 = *acc;
                *acc += v;
                let h = plot_h * v / max;
                let y = H - MARGIN_B - plot_h * *acc / max;
                let x = MARGIN_L + ci as f64 * slot + (slot - bar) / 2.0;
                let _ = writeln!(
                    out,
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar:.1}\" \
                     height=\"{h:.1}\" fill=\"{color}\"/>"
                );
                let _ = y0;
            }
        }
        for (ci, cat) in self.categories.iter().enumerate() {
            let x = MARGIN_L + (ci as f64 + 0.5) * slot;
            let y = H - MARGIN_B + 10.0;
            let _ = writeln!(
                out,
                "<text x=\"{x:.1}\" y=\"{y:.1}\" text-anchor=\"end\" \
                 transform=\"rotate(-45 {x:.1} {y:.1})\">{}</text>",
                esc(cat)
            );
        }
        legend(
            &mut out,
            &self
                .series
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
        );
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_bars_render_all_elements() {
        let svg = GroupedBarChart::new("Fig. X", "MPKI")
            .categories(vec!["a".into(), "b".into()])
            .series("SMS", vec![1.0, 2.0])
            .series("CBWS+SMS", vec![0.5, 1.0])
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2); // bg + bars + legend
        assert!(svg.contains("CBWS+SMS"));
        assert!(svg.contains("Fig. X"));
    }

    #[test]
    fn line_chart_renders_polylines() {
        let svg = LineChart::new("Fig. 5", "% vectors", "% iterations")
            .series("soplex", vec![(0.0, 0.0), (0.5, 0.9), (1.0, 1.0)])
            .series("stencil", vec![(0.0, 0.97), (1.0, 1.0)])
            .render();
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn stacked_bars_sum_to_total_height() {
        let svg = StackedBarChart::new("Fig. 13", "%")
            .categories(vec!["SMS".into()])
            .series("timely", vec![0.3])
            .series("missing", vec![0.7])
            .render();
        assert_eq!(svg.matches("<rect").count(), 1 + 2 + 2);
    }

    #[test]
    fn escaping_applied_to_labels() {
        let svg = GroupedBarChart::new("a<b & c", "y")
            .categories(vec!["x<y".into()])
            .series("s&t", vec![1.0])
            .render();
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(svg.contains("x&lt;y"));
        assert!(svg.contains("s&amp;t"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    #[should_panic(expected = "categories")]
    fn empty_chart_rejected() {
        GroupedBarChart::new("t", "y")
            .series("s", vec![1.0])
            .render();
    }

    #[test]
    fn zero_values_render_without_nan() {
        let svg = GroupedBarChart::new("t", "y")
            .categories(vec!["a".into()])
            .series("s", vec![0.0])
            .render();
        assert!(!svg.contains("NaN"));
    }
}
