//! Minimal aligned-text table renderer for the experiment binaries.

use std::fmt;

/// A right-aligned text table with a left-aligned first (label) column.
///
/// ```
/// use cbws_stats::TextTable;
///
/// let mut t = TextTable::new(vec!["bench".into(), "MPKI".into()]);
/// t.row(vec!["stencil".into(), "24.1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("stencil"));
/// assert!(s.contains("MPKI"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row, padding or truncating to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows as CSV-ready string vectors.
    pub fn csv_rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The header labels.
    pub fn header(&self) -> Vec<&str> {
        self.header.iter().map(String::as_str).collect()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<width$}", c, width = widths[0])?;
                } else {
                    write!(f, "  {:>width$}", c, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "x".into()]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["longer".into(), "10.25".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal rendered width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        assert_eq!(t.csv_rows()[0].len(), 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        TextTable::new(vec![]);
    }
}
