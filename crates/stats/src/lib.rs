#![warn(missing_docs)]

//! Evaluation metrics and table rendering for the CBWS reproduction.
//!
//! Implements the derived metrics the paper reports:
//!
//! * **MPKI** (Fig. 12) — last-level-cache demand misses per kilo-instruction;
//! * **timeliness/accuracy** (Fig. 13) — the 5-way breakdown of Srinath et
//!   al. scaled to demand L2 accesses, with *wrong* plotted beyond 100%;
//! * **normalized IPC** (Fig. 14) — speedup against a chosen baseline;
//! * **performance/cost** (Fig. 15) — IPC per byte read from memory,
//!   normalized to the no-prefetch configuration.
//!
//! Plus a small [`TextTable`] renderer and CSV writer used by every
//! experiment binary.

mod svg;
mod table;
mod timeliness;

pub use svg::{GroupedBarChart, LineChart, StackedBarChart, PALETTE};
pub use table::TextTable;
pub use timeliness::TimelinessBreakdown;

use cbws_sim_cpu::CpuStats;
use cbws_sim_mem::MemStats;
use serde::{Deserialize, Serialize};

/// The result of one (workload, prefetcher) simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Workload name (figure label).
    pub workload: String,
    /// Whether the workload is in the memory-intensive group.
    pub memory_intensive: bool,
    /// Prefetcher display name.
    pub prefetcher: String,
    /// Core timing stats.
    pub cpu: CpuStats,
    /// Memory hierarchy stats.
    pub mem: MemStats,
}

impl RunRecord {
    /// Last-level-cache misses per kilo-instruction (Fig. 12).
    ///
    /// # Panics
    ///
    /// Panics if the run committed no instructions.
    pub fn mpki(&self) -> f64 {
        self.mem.mpki(self.cpu.instructions)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.cpu.ipc()
    }

    /// Raw performance/cost: IPC per byte read from memory. Zero bytes read
    /// (possible only for empty runs) yields 0.
    pub fn perf_cost(&self) -> f64 {
        let bytes = self.mem.bytes_read();
        if bytes == 0 {
            0.0
        } else {
            self.ipc() / bytes as f64
        }
    }

    /// The Fig. 13 breakdown for this run.
    pub fn timeliness(&self) -> TimelinessBreakdown {
        TimelinessBreakdown::from_mem(&self.mem)
    }

    /// Exports the run's derived metrics as gauges under the `run.*`
    /// namespace (gauges, not counters, so a re-export is idempotent and
    /// never double-counts against the live `l2.*` counters).
    pub fn export_metrics(&self, telemetry: &cbws_telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.set_gauge("run.ipc", self.ipc());
        if self.cpu.instructions > 0 {
            telemetry.set_gauge("run.mpki", self.mpki());
        }
        telemetry.set_gauge("run.perf_cost", self.perf_cost());
        telemetry.set_gauge("run.cycles", self.cpu.cycles as f64);
        telemetry.set_gauge("run.instructions", self.cpu.instructions as f64);
        telemetry.set_gauge("run.mem_accesses", self.cpu.mem_accesses as f64);
        telemetry.set_gauge("run.branch_mispredictions", self.cpu.mispredictions as f64);
        telemetry.set_gauge("run.loop_cycle_fraction", self.cpu.loop_cycle_fraction());
        telemetry.set_gauge("run.wrong_prefetches", self.mem.wrong as f64);
        let t = self.timeliness();
        telemetry.set_gauge("run.timeliness.plain_hit", t.plain_hits);
        telemetry.set_gauge("run.timeliness.timely", t.timely);
        telemetry.set_gauge(
            "run.timeliness.shorter_waiting_time",
            t.shorter_waiting_time,
        );
        telemetry.set_gauge("run.timeliness.non_timely", t.non_timely);
        telemetry.set_gauge("run.timeliness.missing", t.missing);
        telemetry.set_gauge("run.timeliness.wrong", t.wrong);
    }
}

/// Geometric mean of an iterator of positive ratios; 0 if empty.
///
/// The paper reports average speedups of ratio metrics (Figs. 14-15);
/// geometric means are the standard aggregation for those.
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean; 0 if empty. Used for averaging MPKI and the timeliness
/// fractions (absolute quantities, matching the paper's `average-MI` /
/// `average-ALL` bars).
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Writes records as a CSV file with a header row.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_csv<W: std::io::Write>(
    mut w: W,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    writeln!(w, "{}", header.join(","))?;
    for row in rows {
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(instr: u64, cycles: u64, missing: u64, fills: u64) -> RunRecord {
        RunRecord {
            workload: "w".into(),
            memory_intensive: true,
            prefetcher: "p".into(),
            cpu: CpuStats {
                cycles,
                instructions: instr,
                ..Default::default()
            },
            mem: MemStats {
                l2_demand_accesses: missing,
                missing,
                demand_fills: fills,
                ..Default::default()
            },
        }
    }

    #[test]
    fn mpki_and_ipc() {
        let r = record(10_000, 5_000, 50, 50);
        assert!((r.mpki() - 5.0).abs() < 1e-12);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perf_cost_scales_with_traffic() {
        let cheap = record(10_000, 5_000, 50, 50);
        let wasteful = record(10_000, 5_000, 50, 500);
        assert!(cheap.perf_cost() > wasteful.perf_cost());
    }

    #[test]
    fn geomean_of_ratios() {
        let g = geomean([1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean([1.0, 0.0]);
    }

    #[test]
    fn mean_basic() {
        assert!((mean([1.0, 2.0, 6.0]) - 3.0).abs() < 1e-12);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }
}
