//! The Fig. 13 timeliness/accuracy breakdown.

use cbws_sim_mem::MemStats;
use serde::{Deserialize, Serialize};

/// The five timeliness/accuracy classes of Fig. 13, as fractions of demand
/// L2 accesses. `timely + shorter_waiting_time + non_timely + missing +
/// plain_hits = 1`; `wrong` is additional traffic plotted beyond 100%.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelinessBreakdown {
    /// Fraction of demand L2 accesses whose miss a prefetch eliminated.
    pub timely: f64,
    /// Fraction that found their prefetch still in flight.
    pub shorter_waiting_time: f64,
    /// Fraction whose prefetch was queued but never issued.
    pub non_timely: f64,
    /// Fraction missed with no prefetch involvement.
    pub missing: f64,
    /// Fraction that hit on demand-fetched data (not plotted by the paper,
    /// but needed for the partition invariant).
    pub plain_hits: f64,
    /// Wrong prefetches as a fraction of demand L2 accesses (can exceed 1).
    pub wrong: f64,
}

impl TimelinessBreakdown {
    /// Computes the breakdown from raw hierarchy counters. All-zero when
    /// there were no demand L2 accesses.
    pub fn from_mem(mem: &MemStats) -> Self {
        let d = mem.l2_demand_accesses;
        if d == 0 {
            return Self::default();
        }
        let f = |x: u64| x as f64 / d as f64;
        TimelinessBreakdown {
            timely: f(mem.timely),
            shorter_waiting_time: f(mem.shorter_waiting_time),
            non_timely: f(mem.non_timely),
            missing: f(mem.missing),
            plain_hits: f(mem.plain_hits),
            wrong: f(mem.wrong),
        }
    }

    /// The partition invariant: the five demand classes sum to 1 (within
    /// floating-point tolerance). Vacuously true for empty breakdowns.
    pub fn is_partition(&self) -> bool {
        let sum = self.timely
            + self.shorter_waiting_time
            + self.non_timely
            + self.missing
            + self.plain_hits;
        sum == 0.0 || (sum - 1.0).abs() < 1e-9
    }

    /// Element-wise arithmetic mean over several breakdowns (the paper's
    /// `average-MI` / `average-ALL` bars).
    pub fn mean<'a, I: IntoIterator<Item = &'a TimelinessBreakdown>>(items: I) -> Self {
        let mut acc = TimelinessBreakdown::default();
        let mut n = 0usize;
        for b in items {
            acc.timely += b.timely;
            acc.shorter_waiting_time += b.shorter_waiting_time;
            acc.non_timely += b.non_timely;
            acc.missing += b.missing;
            acc.plain_hits += b.plain_hits;
            acc.wrong += b.wrong;
            n += 1;
        }
        if n > 0 {
            let k = n as f64;
            acc.timely /= k;
            acc.shorter_waiting_time /= k;
            acc.non_timely /= k;
            acc.missing /= k;
            acc.plain_hits /= k;
            acc.wrong /= k;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemStats {
        MemStats {
            l2_demand_accesses: 100,
            timely: 30,
            shorter_waiting_time: 5,
            non_timely: 5,
            missing: 40,
            plain_hits: 20,
            wrong: 12,
            ..Default::default()
        }
    }

    #[test]
    fn fractions_and_partition() {
        let b = TimelinessBreakdown::from_mem(&mem());
        assert!((b.timely - 0.30).abs() < 1e-12);
        assert!((b.wrong - 0.12).abs() < 1e-12);
        assert!(b.is_partition());
    }

    #[test]
    fn empty_is_all_zero() {
        let b = TimelinessBreakdown::from_mem(&MemStats::default());
        assert_eq!(b, TimelinessBreakdown::default());
        assert!(b.is_partition());
    }

    #[test]
    fn mean_averages_elementwise() {
        let a = TimelinessBreakdown::from_mem(&mem());
        let zero = TimelinessBreakdown::default();
        let m = TimelinessBreakdown::mean([&a, &zero]);
        assert!((m.timely - 0.15).abs() < 1e-12);
        assert!((m.wrong - 0.06).abs() < 1e-12);
    }
}
